// Package loadgen is the BIPS load-generator client: it drives a central
// server with K concurrent connections at a target aggregate request rate
// and reports throughput and latency percentiles. It exists so every
// scaling change to the serving layer can measure itself against the same
// workload; cmd/bips-loadgen is the command-line wrapper and
// docs/OPERATIONS.md holds the benchmark recipe.
//
// The generator opens Clients persistent connections (wire v2 frames by
// default, v1 JSON lines with V1), runs Pipeline concurrent callers per
// connection so requests are pipelined on the socket, and paces each
// caller to its share of the aggregate QPS target. Latency is measured
// per envelope round trip; with Batch > 1 each envelope carries that many
// batched sub-requests, which all count toward the request total.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bips/internal/baseband"
	"bips/internal/metrics"
	"bips/internal/wire"
)

// Mode selects the request mix.
type Mode string

// Request mixes.
const (
	// ModeRooms issues floor-plan queries: pure reads with no setup
	// requirements, the simplest smoke workload.
	ModeRooms Mode = "rooms"
	// ModeLocate issues locate queries between the synthetic users; the
	// generator logs them in and places them during setup.
	ModeLocate Mode = "locate"
	// ModeMixed interleaves presence deltas (one third) with locate
	// queries (two thirds) — the paper's serving mix at campus scale.
	ModeMixed Mode = "mixed"
)

// Config parameterizes a load-generation run.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Clients is the number of persistent connections (default 4).
	Clients int
	// Pipeline is the number of concurrent callers per connection
	// (default 8); each caller keeps one request in flight, so
	// Clients*Pipeline bounds total in-flight requests.
	Pipeline int
	// QPS is the target aggregate request rate; 0 runs unthrottled.
	QPS float64
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Mode is the request mix (default ModeRooms).
	Mode Mode
	// Batch > 1 wraps that many sub-requests into each MsgBatch
	// envelope.
	Batch int
	// V1 selects the newline-JSON protocol instead of v2 frames.
	V1 bool
	// Users is the number of synthetic users for ModeLocate/ModeMixed
	// (default 8). They must be pre-registered on the server as
	// "user0".."userN-1" with Password — bips-server's -loadgen-users
	// flag does exactly that.
	Users int
	// Password is the synthetic users' password (default "loadgen").
	Password string
	// Seed drives the request randomness (which user locates whom).
	Seed int64
}

func (c *Config) fill() error {
	if c.Addr == "" {
		return errors.New("loadgen: no server address")
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Mode == "" {
		c.Mode = ModeRooms
	}
	switch c.Mode {
	case ModeRooms, ModeLocate, ModeMixed:
	default:
		return fmt.Errorf("loadgen: unknown mode %q", c.Mode)
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.Users <= 0 {
		c.Users = 8
	}
	if c.Password == "" {
		c.Password = "loadgen"
	}
	return nil
}

// UserName returns the i-th synthetic user id, the naming contract
// between the generator and server-side registration.
func UserName(i int) string { return fmt.Sprintf("user%d", i) }

// UserDevice returns the i-th synthetic user's device address.
func UserDevice(i int) baseband.BDAddr {
	return baseband.BDAddr(0xE000_0000_0000 + uint64(i+1))
}

// Report is the outcome of a run.
type Report struct {
	// Requests counts completed requests; batched sub-requests count
	// individually.
	Requests int64
	// Errors counts failed calls (transport or MsgError).
	Errors int64
	// Elapsed is the measured wall time of the request phase.
	Elapsed time.Duration
	// QPS is Requests/Elapsed.
	QPS float64
	// Latency percentiles of the envelope round trip.
	P50, P90, P99, Max, Mean time.Duration
}

// String renders the report as the one block bips-loadgen prints.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "requests   %d\n", r.Requests)
	fmt.Fprintf(&sb, "errors     %d\n", r.Errors)
	fmt.Fprintf(&sb, "elapsed    %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "throughput %.0f req/s\n", r.QPS)
	fmt.Fprintf(&sb, "latency    p50=%v p90=%v p99=%v max=%v mean=%v",
		r.P50, r.P90, r.P99, r.Max, r.Mean)
	return sb.String()
}

// setupGrace bounds how long setup plus final drain may take on top of
// the configured Duration before a wedged server is given up on. A var
// so tests can shrink it.
var setupGrace = 15 * time.Second

// Run executes one load-generation run against the server at cfg.Addr.
// Setup (login + initial placement for the locate modes) happens before
// the clock starts; cancelling the context aborts the run. Run always
// returns within roughly Duration + 2*setupGrace even against a server
// that accepts connections but never answers: past that hard deadline
// (or on ctx cancellation) the connections are force-closed, which
// unblocks every pending call.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if err := cfg.fill(); err != nil {
		return Report{}, err
	}

	clients := make([]*wire.Client, cfg.Clients)
	for i := range clients {
		c, err := dial(cfg)
		if err != nil {
			for _, prev := range clients[:i] {
				prev.Close()
			}
			return Report{}, err
		}
		clients[i] = c
	}
	var closeOnce sync.Once
	closeAll := func() {
		closeOnce.Do(func() {
			for _, c := range clients {
				c.Close()
			}
		})
	}
	defer closeAll()
	// Abort watcher: caller cancellation or the hard deadline closes the
	// connections while setup or workers may be blocked in calls.
	hardCtx, hardCancel := context.WithTimeout(ctx, cfg.Duration+2*setupGrace)
	defer hardCancel()
	go func() {
		<-hardCtx.Done()
		closeAll()
	}()

	rooms, err := setup(cfg, clients[0])
	if err != nil {
		if hErr := hardCtx.Err(); hErr != nil {
			return Report{}, fmt.Errorf("loadgen: setup aborted (%v): %w", hErr, err)
		}
		return Report{}, err
	}

	var (
		requests atomic.Int64
		errCount atomic.Int64
		hist     metrics.Histogram
	)
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	workers := cfg.Clients * cfg.Pipeline
	// Each worker paces itself to its share of the aggregate target:
	// worker w's n-th request is due at start + n*interval.
	var interval time.Duration
	if cfg.QPS > 0 {
		perWorker := cfg.QPS / float64(workers)
		interval = time.Duration(float64(time.Second) * float64(cfg.Batch) / perWorker)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		client := clients[w%cfg.Clients]
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			for n := int64(0); ; n++ {
				if interval > 0 {
					due := start.Add(time.Duration(n) * interval)
					if d := time.Until(due); d > 0 {
						select {
						case <-runCtx.Done():
							return
						case <-time.After(d):
						}
					}
				}
				if runCtx.Err() != nil {
					return
				}
				t0 := time.Now()
				done, err := issue(cfg, client, rng, rooms)
				hist.ObserveDuration(time.Since(t0))
				requests.Add(done)
				if err != nil {
					errCount.Add(1)
					// A top-level *wire.Error is a served response; any
					// other error is transport-level (EOF, closed, write
					// failure) and the connection is dead — every further
					// call would fail instantly, turning the rest of the
					// run into a busy error loop. Stop this worker.
					var werr *wire.Error
					if !errors.As(err, &werr) {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := hist.Snapshot()
	toDur := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	rep := Report{
		Requests: requests.Load(),
		Errors:   errCount.Load(),
		Elapsed:  elapsed,
		P50:      toDur(snap.Quantile(0.50)),
		P90:      toDur(snap.Quantile(0.90)),
		P99:      toDur(snap.Quantile(0.99)),
		Max:      toDur(snap.Max),
		Mean:     toDur(snap.Mean()),
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep, nil
}

func dial(cfg Config) (*wire.Client, error) {
	conn, err := net.DialTimeout("tcp", cfg.Addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if cfg.V1 {
		return wire.NewClient(wire.NewCodec(conn)), nil
	}
	return wire.NewClient(wire.NewFrameCodec(conn)), nil
}

// setup fetches the room list and, for the locate modes, logs the
// synthetic users in and places each in a room. It returns the room ids.
func setup(cfg Config, client *wire.Client) ([]wire.RoomInfo, error) {
	var rooms wire.RoomsResult
	if err := client.Call(wire.MsgRooms, wire.RoomsQuery{}, &rooms); err != nil {
		return nil, fmt.Errorf("loadgen: rooms query: %w", err)
	}
	if len(rooms.Rooms) == 0 {
		return nil, errors.New("loadgen: server has no rooms")
	}
	if cfg.Mode == ModeRooms {
		return rooms.Rooms, nil
	}
	for i := 0; i < cfg.Users; i++ {
		// Logout first so back-to-back runs against the same server
		// work: a previous run leaves the synthetic users logged in.
		// The error (not logged in, on a fresh server) is expected.
		_ = client.Call(wire.MsgLogout, wire.Logout{User: UserName(i)}, nil)
		if err := client.Call(wire.MsgLogin, wire.Login{
			User:     UserName(i),
			Password: cfg.Password,
			Device:   wire.FormatAddr(UserDevice(i)),
		}, nil); err != nil {
			return nil, fmt.Errorf("loadgen: login %s (is the server registered with matching -loadgen-users?): %w", UserName(i), err)
		}
		room := rooms.Rooms[i%len(rooms.Rooms)]
		if err := client.Call(wire.MsgPresence, wire.Presence{
			Device:  wire.FormatAddr(UserDevice(i)),
			Room:    room.ID,
			At:      0,
			Present: true,
		}, nil); err != nil {
			return nil, fmt.Errorf("loadgen: place %s: %w", UserName(i), err)
		}
	}
	return rooms.Rooms, nil
}

// issue sends one envelope (a single request, or a MsgBatch of cfg.Batch
// sub-requests) and returns how many requests completed.
func issue(cfg Config, client *wire.Client, rng *rand.Rand, rooms []wire.RoomInfo) (int64, error) {
	if cfg.Batch <= 1 {
		t, body := nextRequest(cfg, rng, rooms)
		return 1, call(client, t, body)
	}
	var b wire.Batch
	for i := 0; i < cfg.Batch; i++ {
		t, body := nextRequest(cfg, rng, rooms)
		if err := b.Add(t, body); err != nil {
			return 0, err
		}
	}
	var res wire.BatchResult
	if err := client.Call(wire.MsgBatch, b, &res); err != nil {
		return 0, err
	}
	// Inner errors (e.g. a locate racing a presence move) count as
	// completed requests; the serving layer answered them.
	return int64(len(res.Responses)), nil
}

// nextRequest picks one request from the configured mix.
func nextRequest(cfg Config, rng *rand.Rand, rooms []wire.RoomInfo) (wire.MsgType, any) {
	switch cfg.Mode {
	case ModeLocate:
		return locateRequest(cfg, rng)
	case ModeMixed:
		if rng.Intn(3) == 0 {
			u := rng.Intn(cfg.Users)
			room := rooms[rng.Intn(len(rooms))]
			return wire.MsgPresence, wire.Presence{
				Device:  wire.FormatAddr(UserDevice(u)),
				Room:    room.ID,
				At:      0,
				Present: true,
			}
		}
		return locateRequest(cfg, rng)
	default:
		return wire.MsgRooms, wire.RoomsQuery{}
	}
}

func locateRequest(cfg Config, rng *rand.Rand) (wire.MsgType, any) {
	querier := rng.Intn(cfg.Users)
	target := rng.Intn(cfg.Users)
	return wire.MsgLocate, wire.Locate{
		Querier: UserName(querier),
		Target:  UserName(target),
	}
}

// call issues one non-batch request, tolerating business-level MsgError
// responses (the request completed; the answer was an error body).
func call(client *wire.Client, t wire.MsgType, body any) error {
	err := client.Call(t, body, nil)
	var werr *wire.Error
	if errors.As(err, &werr) {
		return nil
	}
	return err
}
