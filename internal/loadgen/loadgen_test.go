package loadgen

import (
	"context"
	"net"
	"testing"
	"time"

	"bips/internal/building"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
)

// startServer runs an in-process bips-server on a loopback port with the
// loadgen naming contract pre-registered, mirroring
// `bips-server -loadgen-users N`.
func startServer(t *testing.T, users int) string {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for i := 0; i < users; i++ {
		if err := reg.Register(registry.UserID(UserName(i)), UserName(i), "loadgen",
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	db, err := locdb.NewSharded(8, locdb.DefaultHistoryLimit)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(reg, db, bld)
	s.Logf = t.Logf
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return l.Addr().String()
}

// TestSmoke10kQPS is the CI smoke acceptance run: the generator must
// sustain at least 10k requests/second against a local server. Batched v2
// pipelining makes that comfortable even on one core; the throughput
// floor is only asserted without the race detector (instrumentation
// slows the server itself).
func TestSmoke10kQPS(t *testing.T) {
	addr := startServer(t, 8)
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Clients:  4,
		Pipeline: 4,
		Mode:     ModeMixed,
		Batch:    32,
		Users:    8,
		Duration: time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if !raceEnabled {
		if rep.QPS < 10000 {
			t.Errorf("throughput = %.0f req/s, want >= 10000", rep.QPS)
		}
	}
	if rep.P50 <= 0 || rep.Max < rep.P50 {
		t.Errorf("latency percentiles inconsistent: %+v", rep)
	}
}

// TestPacedRun: with a QPS target the generator must throttle itself —
// the point of pacing is reproducible load, so overshoot is a bug.
func TestPacedRun(t *testing.T) {
	addr := startServer(t, 2)
	const target = 400.0
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Clients:  2,
		Pipeline: 2,
		QPS:      target,
		Mode:     ModeRooms,
		Duration: 500 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.QPS > target*1.5 {
		t.Errorf("throughput %.0f overshoots target %.0f", rep.QPS, target)
	}
	if rep.Requests < 10 {
		t.Errorf("only %d requests in a paced run", rep.Requests)
	}
}

// TestV1Fallback: the generator also speaks v1, which doubles as an
// end-to-end test of the server's version sniffing under load.
func TestV1Fallback(t *testing.T) {
	addr := startServer(t, 4)
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Clients:  2,
		Pipeline: 2,
		Mode:     ModeLocate,
		V1:       true,
		Users:    4,
		Duration: 300 * time.Millisecond,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Requests == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(context.Background(), Config{Addr: "x", Mode: "bogus"}); err == nil {
		t.Error("bogus mode accepted")
	}
}

// TestWedgedServerDoesNotHang: a server that accepts connections but
// never answers must not hang Run forever — the hard deadline closes the
// connections and setup fails.
func TestWedgedServerDoesNotHang(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and go silent
		}
	}()

	oldGrace := setupGrace
	setupGrace = 200 * time.Millisecond
	defer func() { setupGrace = oldGrace }()

	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), Config{
			Addr:     l.Addr().String(),
			Mode:     ModeRooms,
			Duration: 100 * time.Millisecond,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("run against a wedged server succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung against a wedged server")
	}
}

// TestCancelledContextAborts: cancelling the caller's context aborts a
// run blocked on an unresponsive server immediately.
func TestCancelledContextAborts(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Config{
			Addr:     l.Addr().String(),
			Mode:     ModeRooms,
			Duration: time.Minute,
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled run reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after ctx cancellation")
	}
}

// TestUnregisteredUsersFail: pointing a locate-mode run at a server
// without the loadgen users must fail loudly at setup, not silently
// produce an all-error run.
func TestUnregisteredUsersFail(t *testing.T) {
	addr := startServer(t, 0)
	_, err := Run(context.Background(), Config{
		Addr:     addr,
		Mode:     ModeLocate,
		Users:    2,
		Duration: 100 * time.Millisecond,
	})
	if err == nil {
		t.Error("run against unregistered users succeeded")
	}
}

// TestParseMix: weight-list validation.
func TestParseMix(t *testing.T) {
	good, err := parseMix("locate=60, presence=20,at=10,trajectory=10")
	if err != nil || len(good) != 4 {
		t.Fatalf("parseMix = %v, %v", good, err)
	}
	if good[0].op != OpLocate || good[0].weight != 60 {
		t.Fatalf("first entry = %+v", good[0])
	}
	if bare, err := parseMix("rooms"); err != nil || bare[0].weight != 1 {
		t.Fatalf("bare op = %v, %v", bare, err)
	}
	for _, bad := range []string{"", "bogus=1", "locate=0", "locate=-2", "locate=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestMixedHistoryWorkload: the -mix workload with history ops runs
// clean against a live server — presence deltas advance the simulated
// clock and the at/trajectory queries read it back.
func TestMixedHistoryWorkload(t *testing.T) {
	addr := startServer(t, 4)
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Clients:  2,
		Pipeline: 2,
		Mix:      "locate=3,presence=3,at=2,trajectory=2",
		Users:    4,
		Duration: 400 * time.Millisecond,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
}

// TestAnalyticsWorkload: the analytics ops (contacts, occupancy, dwell)
// run clean against a live server alongside the presence writes that
// feed them — the analytics engine answers from the run's own movement.
func TestAnalyticsWorkload(t *testing.T) {
	addr := startServer(t, 4)
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Clients:  2,
		Pipeline: 2,
		Mix:      "presence=4,contacts=2,occupancy=2,dwell=2",
		Users:    4,
		Duration: 400 * time.Millisecond,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
}

// TestMixValidationAtRun: a bad -mix fails the run up front.
func TestMixValidationAtRun(t *testing.T) {
	if _, err := Run(context.Background(), Config{Addr: "x", Mix: "nope=3"}); err == nil {
		t.Error("bogus mix accepted")
	}
}

// TestIngestWorkload: the ingest op streams sequenced MsgPresenceBatch
// frames on per-worker sessions; every delta counts as one request and
// a clean run sees no errors.
func TestIngestWorkload(t *testing.T) {
	addr := startServer(t, 4)
	const ingestBatch = 32
	rep, err := Run(context.Background(), Config{
		Addr:        addr,
		Clients:     2,
		Pipeline:    2,
		Mix:         "ingest",
		IngestBatch: ingestBatch,
		Users:       4,
		Duration:    400 * time.Millisecond,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.Requests < ingestBatch {
		t.Fatalf("requests = %d, want at least one full frame (%d deltas)", rep.Requests, ingestBatch)
	}
	if rep.Requests%ingestBatch != 0 {
		t.Errorf("requests = %d not a multiple of the frame size %d — deltas are miscounted", rep.Requests, ingestBatch)
	}
}

// TestIngestMixedWithReads: write frames and read queries share one run,
// the point of measuring both paths with the same tool.
func TestIngestMixedWithReads(t *testing.T) {
	addr := startServer(t, 4)
	rep, err := Run(context.Background(), Config{
		Addr:        addr,
		Clients:     2,
		Pipeline:    2,
		Mix:         "ingest=1,locate=3",
		IngestBatch: 16,
		Users:       4,
		Duration:    400 * time.Millisecond,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
}

// TestIngestIncompatibleWithBatch: wrapping ingest frames in MsgBatch
// envelopes is rejected up front.
func TestIngestIncompatibleWithBatch(t *testing.T) {
	if _, err := Run(context.Background(), Config{Addr: "x", Mix: "ingest", Batch: 8}); err == nil {
		t.Error("ingest + Batch>1 accepted")
	}
}
