package loadgen

import (
	"context"
	"net"
	"testing"
	"time"

	"bips/internal/building"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
)

// benchLoadServer is startServer for benchmarks, with server options so
// the two fan-out delivery modes can be compared on the same workload.
func benchLoadServer(b *testing.B, users int, opts ...server.Option) (*server.Server, string) {
	b.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		b.Fatal(err)
	}
	reg := registry.New()
	for i := 0; i < users; i++ {
		if err := reg.Register(registry.UserID(UserName(i)), UserName(i), "loadgen",
			registry.RightLocate, registry.RightTrackable); err != nil {
			b.Fatal(err)
		}
	}
	db, err := locdb.NewSharded(8, locdb.DefaultHistoryLimit)
	if err != nil {
		b.Fatal(err)
	}
	s := server.New(reg, db, bld, opts...)
	s.Logf = nil
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	b.Cleanup(func() {
		if err := s.Close(); err != nil {
			b.Errorf("server close: %v", err)
		}
		if err := <-serveDone; err != nil {
			b.Errorf("serve: %v", err)
		}
	})
	return s, l.Addr().String()
}

// BenchmarkMixedIngestSubscribe is the end-to-end acceptance measurement
// for the staged fan-out: a 70/30 ingest/subscribe mix — sessioned
// MsgPresenceBatch frames racing subscription churn, every frame fanning
// out to whatever room subscriptions are live — against a real listener,
// in the synchronous delivery mode versus the staged (default) one.
//
// Each sub-benchmark is one timed loadgen run whose duration scales with
// b.N; the reported ns/op is the server-observed time per completed
// request (batched ingest deltas count individually), and req/s is the
// sustained throughput, the number BENCH_PR9.json records.
func BenchmarkMixedIngestSubscribe(b *testing.B) {
	const users = 8
	for _, mode := range []struct {
		name string
		opts []server.Option
	}{
		{"sync", []server.Option{server.WithSyncFanout()}},
		{"staged", nil},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// Ingest bursts outrun the subscribers' drain rate by design;
			// a large buffer and an effectively-infinite drop limit keep
			// the slow-consumer condemnation (a correctness mechanism,
			// measured elsewhere) from killing connections mid-run.
			opts := append([]server.Option{
				server.WithEventBuffer(4096),
				server.WithDropLimit(1 << 30),
			}, mode.opts...)
			_, addr := benchLoadServer(b, users, opts...)
			// Duration scales with b.N so longer benchtimes average
			// longer runs; the floor keeps a 1-iteration probe long
			// enough to get past connection warm-up.
			d := time.Duration(b.N) * 100 * time.Millisecond
			if d < 300*time.Millisecond {
				d = 300 * time.Millisecond
			}
			if d > 3*time.Second {
				d = 3 * time.Second
			}
			b.ResetTimer()
			rep, err := Run(context.Background(), Config{
				Addr:     addr,
				Clients:  4,
				Pipeline: 4,
				Mix:      "ingest=70,subscribe=30",
				Users:    users,
				Duration: d,
				Seed:     9,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Errors != 0 {
				b.Fatalf("errors = %d\n%s", rep.Errors, rep)
			}
			if rep.Requests == 0 {
				b.Fatal("no requests completed")
			}
			// Override the (meaningless) wall-per-iteration ns/op with
			// the per-request cost, so records stay comparable.
			b.ReportMetric(float64(rep.Elapsed.Nanoseconds())/float64(rep.Requests), "ns/op")
			b.ReportMetric(rep.QPS, "req/s")
		})
	}
}

// BenchmarkMixedFlushCoalesce is the acceptance measurement for flush
// coalescing under a realistic mix: pipelined workers issuing ingest
// frames, locate queries and subscription churn, so the writer loop
// sees ragged bursts rather than a steady stream. The frames/flush
// metric is the server-wide amortization — how many frames left per
// write(2) flush — the number BENCH_PR10.json records (acceptance:
// >= 4 at pipeline depth 8).
func BenchmarkMixedFlushCoalesce(b *testing.B) {
	const users = 8
	srv, addr := benchLoadServer(b, users,
		server.WithEventBuffer(4096),
		server.WithDropLimit(1<<30))
	d := time.Duration(b.N) * 100 * time.Millisecond
	if d < 300*time.Millisecond {
		d = 300 * time.Millisecond
	}
	if d > 3*time.Second {
		d = 3 * time.Second
	}
	b.ResetTimer()
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Clients:  4,
		Pipeline: 8,
		Mix:      "ingest=60,locate=30,subscribe=10",
		Users:    users,
		Duration: d,
		Seed:     11,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors != 0 {
		b.Fatalf("errors = %d\n%s", rep.Errors, rep)
	}
	if rep.Requests == 0 {
		b.Fatal("no requests completed")
	}
	st := srv.StatsResult()
	flushes, frames := st.Counters["wire.flushes"], st.Counters["wire.frames"]
	if flushes > 0 {
		b.ReportMetric(float64(frames)/float64(flushes), "frames/flush")
	}
	b.ReportMetric(float64(rep.Elapsed.Nanoseconds())/float64(rep.Requests), "ns/op")
	b.ReportMetric(rep.QPS, "req/s")
}
