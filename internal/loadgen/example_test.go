package loadgen_test

import (
	"context"
	"fmt"
	"net"
	"time"

	"bips/internal/building"
	"bips/internal/loadgen"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
)

// ExampleRun drives an in-process BIPS server with the mixed workload
// (presence deltas + locate queries, batched over pipelined v2
// connections) and reports what completed. Against a remote server only
// the Addr changes — and the server must pre-register the synthetic users
// (bips-server -loadgen-users).
func ExampleRun() {
	// An in-process server standing in for `bips-server -loadgen-users 4`.
	bld, err := building.AcademicDepartment()
	if err != nil {
		panic(err)
	}
	reg := registry.New()
	for i := 0; i < 4; i++ {
		name := loadgen.UserName(i)
		if err := reg.Register(registry.UserID(name), name, "loadgen",
			registry.RightLocate, registry.RightTrackable); err != nil {
			panic(err)
		}
	}
	db, err := locdb.NewSharded(8, locdb.DefaultHistoryLimit)
	if err != nil {
		panic(err)
	}
	srv := server.New(reg, db, bld)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:     l.Addr().String(),
		Clients:  2,
		Pipeline: 4,
		Mode:     loadgen.ModeMixed,
		Batch:    8,
		Users:    4,
		Duration: 200 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("completed some requests:", rep.Requests > 0)
	fmt.Println("errors:", rep.Errors)
	// Output:
	// completed some requests: true
	// errors: 0
}
