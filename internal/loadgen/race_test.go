//go:build race

package loadgen

// raceEnabled relaxes throughput assertions when the race detector's
// instrumentation is slowing the server under test.
const raceEnabled = true
