// Package radio models the physical channel of a BIPS deployment: device
// positions, the disc coverage area of a Bluetooth cell, optional random
// packet loss for failure injection, and the response-collision rule that
// the BIPS authors added to the BlueHoc simulator (two or more inquiry
// responses arriving at the master in the same receive half slot are all
// destroyed).
package radio

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"bips/internal/baseband"
	"bips/internal/sim"
)

// DefaultCoverageRadiusMeters is the piconet coverage radius assumed by the
// paper (10 m radius, 20 m diameter cells).
const DefaultCoverageRadiusMeters = 10.0

// Point is a position on the building floor plan, in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dist returns the Euclidean distance between two points in meters.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{X: p.X + dx, Y: p.Y + dy} }

// String formats the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// Station is a radio endpoint registered with a Medium.
type Station struct {
	Addr   baseband.BDAddr
	Pos    Point
	Radius float64 // coverage radius in meters; 0 means DefaultCoverageRadiusMeters
}

func (s Station) radius() float64 {
	if s.Radius > 0 {
		return s.Radius
	}
	return DefaultCoverageRadiusMeters
}

// Medium tracks station positions and answers reachability queries. It is
// safe for concurrent use: the live BIPS system moves devices from one
// goroutine while workstations query coverage from others. (The
// discrete-event experiments use it single-threaded.)
type Medium struct {
	mu       sync.RWMutex
	stations map[baseband.BDAddr]Station
	lossRate float64
	rng      *rand.Rand
}

// NewMedium returns an empty medium with no packet loss.
func NewMedium() *Medium {
	return &Medium{stations: make(map[baseband.BDAddr]Station)}
}

// SetLoss configures independent random packet loss with probability p in
// [0,1], drawn from rng. A nil rng disables loss regardless of p.
func (m *Medium) SetLoss(p float64, rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lossRate = math.Max(0, math.Min(1, p))
	m.rng = rng
}

// Place registers or moves a station.
func (m *Medium) Place(st Station) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stations[st.Addr] = st
}

// Move updates the position of an already-registered station. Moving an
// unknown station registers it with the default radius.
func (m *Medium) Move(addr baseband.BDAddr, pos Point) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.stations[addr]
	if !ok {
		st = Station{Addr: addr}
	}
	st.Pos = pos
	m.stations[addr] = st
}

// Remove unregisters a station. Removing an unknown station is a no-op.
func (m *Medium) Remove(addr baseband.BDAddr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.stations, addr)
}

// Position returns the station's position and whether it is registered.
func (m *Medium) Position(addr baseband.BDAddr) (Point, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st, ok := m.stations[addr]
	return st.Pos, ok
}

// InRange reports whether to lies within from's coverage disc. Unknown
// stations are never in range.
func (m *Medium) InRange(from, to baseband.BDAddr) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	a, okA := m.stations[from]
	b, okB := m.stations[to]
	if !okA || !okB {
		return false
	}
	return a.Pos.Dist(b.Pos) <= a.radius()
}

// Reachable returns the addresses of all stations inside from's coverage
// disc, excluding from itself, in deterministic (ascending address) order.
func (m *Medium) Reachable(from baseband.BDAddr) []baseband.BDAddr {
	m.mu.RLock()
	defer m.mu.RUnlock()
	a, ok := m.stations[from]
	if !ok {
		return nil
	}
	out := make([]baseband.BDAddr, 0, len(m.stations))
	for addr, st := range m.stations {
		if addr == from {
			continue
		}
		if a.Pos.Dist(st.Pos) <= a.radius() {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lost reports whether an independent loss draw destroys a packet.
func (m *Medium) Lost() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rng == nil || m.lossRate <= 0 {
		return false
	}
	return m.rng.Float64() < m.lossRate
}

// Response is one inquiry response (FHS) in flight toward a master.
type Response struct {
	From baseband.BDAddr
	Freq baseband.FreqIndex
	At   sim.Tick
}

// CollisionPolicy selects how simultaneous inquiry responses are resolved.
type CollisionPolicy int

// Collision policies.
const (
	// CollideDestroyAll models the authors' BlueHoc extension: all
	// responses sharing a receive half slot are destroyed.
	CollideDestroyAll CollisionPolicy = iota + 1
	// CollideNone is the ablation switch: responses never collide
	// (BlueHoc's original optimistic behaviour).
	CollideNone
)

// String names the policy.
func (c CollisionPolicy) String() string {
	switch c {
	case CollideDestroyAll:
		return "destroy-all"
	case CollideNone:
		return "none"
	default:
		return fmt.Sprintf("CollisionPolicy(%d)", int(c))
	}
}

// ResponseBucket accumulates the inquiry responses that arrive at one
// master within the same receive half slot and applies a collision policy.
// It is used by the inquiry master state machine: responses submitted for
// tick T are resolved when the master's receive event at T drains the
// bucket.
type ResponseBucket struct {
	policy  CollisionPolicy
	pending map[sim.Tick][]Response
}

// NewResponseBucket returns a bucket with the given policy.
func NewResponseBucket(policy CollisionPolicy) *ResponseBucket {
	if policy == 0 {
		policy = CollideDestroyAll
	}
	return &ResponseBucket{
		policy:  policy,
		pending: make(map[sim.Tick][]Response),
	}
}

// Submit records a response that will arrive at tick r.At.
func (b *ResponseBucket) Submit(r Response) {
	b.pending[r.At] = append(b.pending[r.At], r)
}

// Drain resolves the receive half slot at tick now. It returns the
// successfully received responses and the responses destroyed by
// collision. Under CollideDestroyAll, two or more responses in the slot
// destroy each other; under CollideNone all are delivered.
func (b *ResponseBucket) Drain(now sim.Tick) (delivered, collided []Response) {
	rs := b.pending[now]
	if len(rs) == 0 {
		return nil, nil
	}
	delete(b.pending, now)
	if b.policy == CollideDestroyAll && len(rs) > 1 {
		return nil, rs
	}
	return rs, nil
}

// PendingBefore returns how many responses are queued at ticks <= now,
// which should be zero if the master drains every receive slot. It exists
// for invariant checks in tests.
func (b *ResponseBucket) PendingBefore(now sim.Tick) int {
	n := 0
	for at, rs := range b.pending {
		if at <= now {
			n += len(rs)
		}
	}
	return n
}
