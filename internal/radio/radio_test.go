package radio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bips/internal/baseband"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{name: "same point", p: Point{1, 2}, q: Point{1, 2}, want: 0},
		{name: "unit x", p: Point{0, 0}, q: Point{1, 0}, want: 1},
		{name: "3-4-5", p: Point{0, 0}, q: Point{3, 4}, want: 5},
		{name: "negative coords", p: Point{-3, -4}, q: Point{0, 0}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		p, q := Point{ax, ay}, Point{bx, by}
		d1, d2 := p.Dist(q), q.Dist(p)
		return d1 == d2 && (d1 >= 0 || math.IsNaN(d1) || math.IsInf(d1, 1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMediumInRange(t *testing.T) {
	m := NewMedium()
	ws := baseband.BDAddr(0x1)
	dev := baseband.BDAddr(0x2)
	m.Place(Station{Addr: ws, Pos: Point{0, 0}})
	m.Place(Station{Addr: dev, Pos: Point{5, 0}})
	if !m.InRange(ws, dev) {
		t.Error("device at 5m not in 10m default coverage")
	}
	m.Move(dev, Point{10.0, 0})
	if !m.InRange(ws, dev) {
		t.Error("device exactly at radius should be in range")
	}
	m.Move(dev, Point{10.01, 0})
	if m.InRange(ws, dev) {
		t.Error("device beyond radius reported in range")
	}
}

func TestMediumCustomRadius(t *testing.T) {
	m := NewMedium()
	ws := baseband.BDAddr(0x1)
	dev := baseband.BDAddr(0x2)
	m.Place(Station{Addr: ws, Pos: Point{0, 0}, Radius: 3})
	m.Place(Station{Addr: dev, Pos: Point{5, 0}})
	if m.InRange(ws, dev) {
		t.Error("5m device in range of 3m-radius cell")
	}
}

func TestMediumUnknownStations(t *testing.T) {
	m := NewMedium()
	if m.InRange(1, 2) {
		t.Error("unknown stations in range")
	}
	if _, ok := m.Position(1); ok {
		t.Error("unknown station has position")
	}
	if got := m.Reachable(1); got != nil {
		t.Errorf("Reachable(unknown) = %v, want nil", got)
	}
	m.Remove(1) // must not panic
}

func TestMoveRegistersUnknown(t *testing.T) {
	m := NewMedium()
	m.Move(7, Point{1, 1})
	if pos, ok := m.Position(7); !ok || pos != (Point{1, 1}) {
		t.Errorf("Position(7) = %v,%v after Move", pos, ok)
	}
}

func TestReachableSortedAndFiltered(t *testing.T) {
	m := NewMedium()
	ws := baseband.BDAddr(100)
	m.Place(Station{Addr: ws, Pos: Point{0, 0}})
	m.Place(Station{Addr: 3, Pos: Point{1, 0}})
	m.Place(Station{Addr: 1, Pos: Point{2, 0}})
	m.Place(Station{Addr: 2, Pos: Point{50, 0}}) // out of range
	got := m.Reachable(ws)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Reachable = %v, want [1 3]", got)
	}
}

func TestRemove(t *testing.T) {
	m := NewMedium()
	m.Place(Station{Addr: 1, Pos: Point{0, 0}})
	m.Place(Station{Addr: 2, Pos: Point{1, 0}})
	m.Remove(2)
	if m.InRange(1, 2) {
		t.Error("removed station still in range")
	}
}

func TestLoss(t *testing.T) {
	m := NewMedium()
	if m.Lost() {
		t.Error("loss with no rng configured")
	}
	m.SetLoss(1.0, rand.New(rand.NewSource(1)))
	if !m.Lost() {
		t.Error("loss rate 1.0 did not lose packet")
	}
	m.SetLoss(0, rand.New(rand.NewSource(1)))
	if m.Lost() {
		t.Error("loss rate 0 lost packet")
	}
	// Statistical check: rate 0.3 over many draws.
	m.SetLoss(0.3, rand.New(rand.NewSource(42)))
	lost := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if m.Lost() {
			lost++
		}
	}
	frac := float64(lost) / n
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("loss fraction = %v, want ~0.3", frac)
	}
}

func TestLossRateClamped(t *testing.T) {
	m := NewMedium()
	m.SetLoss(2.0, rand.New(rand.NewSource(1)))
	if !m.Lost() {
		t.Error("clamped rate 2.0->1.0 should always lose")
	}
	m.SetLoss(-1, rand.New(rand.NewSource(1)))
	if m.Lost() {
		t.Error("clamped rate -1->0 should never lose")
	}
}

func TestResponseBucketSingleDelivery(t *testing.T) {
	b := NewResponseBucket(CollideDestroyAll)
	b.Submit(Response{From: 1, At: 10})
	delivered, collided := b.Drain(10)
	if len(delivered) != 1 || len(collided) != 0 {
		t.Fatalf("Drain = %d delivered, %d collided; want 1, 0",
			len(delivered), len(collided))
	}
	if delivered[0].From != 1 {
		t.Errorf("delivered from %v, want 1", delivered[0].From)
	}
	// Second drain of same tick is empty.
	delivered, collided = b.Drain(10)
	if len(delivered) != 0 || len(collided) != 0 {
		t.Error("second drain returned responses")
	}
}

func TestResponseBucketCollision(t *testing.T) {
	b := NewResponseBucket(CollideDestroyAll)
	b.Submit(Response{From: 1, At: 10})
	b.Submit(Response{From: 2, At: 10})
	b.Submit(Response{From: 3, At: 12}) // different half slot: survives
	delivered, collided := b.Drain(10)
	if len(delivered) != 0 {
		t.Errorf("colliding responses delivered: %v", delivered)
	}
	if len(collided) != 2 {
		t.Errorf("collided = %d, want 2", len(collided))
	}
	delivered, collided = b.Drain(12)
	if len(delivered) != 1 || len(collided) != 0 {
		t.Errorf("tick 12 Drain = %d delivered %d collided, want 1, 0",
			len(delivered), len(collided))
	}
}

func TestResponseBucketNoCollisionPolicy(t *testing.T) {
	b := NewResponseBucket(CollideNone)
	b.Submit(Response{From: 1, At: 10})
	b.Submit(Response{From: 2, At: 10})
	delivered, collided := b.Drain(10)
	if len(delivered) != 2 || len(collided) != 0 {
		t.Errorf("CollideNone Drain = %d delivered %d collided, want 2, 0",
			len(delivered), len(collided))
	}
}

func TestResponseBucketDefaultPolicy(t *testing.T) {
	b := NewResponseBucket(0)
	b.Submit(Response{From: 1, At: 5})
	b.Submit(Response{From: 2, At: 5})
	delivered, _ := b.Drain(5)
	if len(delivered) != 0 {
		t.Error("zero policy should default to destroy-all")
	}
}

func TestResponseBucketPendingBefore(t *testing.T) {
	b := NewResponseBucket(CollideDestroyAll)
	b.Submit(Response{From: 1, At: 5})
	b.Submit(Response{From: 2, At: 7})
	b.Submit(Response{From: 3, At: 100})
	if got := b.PendingBefore(10); got != 2 {
		t.Errorf("PendingBefore(10) = %d, want 2", got)
	}
	b.Drain(5)
	b.Drain(7)
	if got := b.PendingBefore(10); got != 0 {
		t.Errorf("PendingBefore(10) after drains = %d, want 0", got)
	}
}

func TestCollisionPolicyString(t *testing.T) {
	if CollideDestroyAll.String() != "destroy-all" ||
		CollideNone.String() != "none" {
		t.Error("unexpected policy names")
	}
	if CollisionPolicy(9).String() != "CollisionPolicy(9)" {
		t.Error("unknown policy name")
	}
}
