package mobility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bips/internal/radio"
	"bips/internal/sim"
)

func testBounds() Rect { return Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 30} }

func TestRectValidate(t *testing.T) {
	if err := testBounds().Validate(); err != nil {
		t.Errorf("valid rect rejected: %v", err)
	}
	bad := []Rect{
		{MinX: 0, MaxX: 0, MinY: 0, MaxY: 10},
		{MinX: 5, MaxX: 1, MinY: 0, MaxY: 10},
		{},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("degenerate rect %+v accepted", r)
		}
	}
}

func TestRectClampContains(t *testing.T) {
	r := testBounds()
	cases := []struct {
		in   radio.Point
		want radio.Point
	}{
		{in: radio.Point{X: 10, Y: 10}, want: radio.Point{X: 10, Y: 10}},
		{in: radio.Point{X: -5, Y: 10}, want: radio.Point{X: 0, Y: 10}},
		{in: radio.Point{X: 60, Y: 40}, want: radio.Point{X: 50, Y: 30}},
	}
	for _, c := range cases {
		got := r.Clamp(c.in)
		if got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
		if !r.Contains(got) {
			t.Errorf("clamped point %v not contained", got)
		}
	}
}

func TestNewWalkerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name    string
		cfg     WalkerConfig
		wantErr bool
	}{
		{name: "defaults", cfg: WalkerConfig{Bounds: testBounds()}},
		{name: "bad bounds", cfg: WalkerConfig{}, wantErr: true},
		{
			name:    "min over max",
			cfg:     WalkerConfig{Bounds: testBounds(), MinSpeed: 2, MaxSpeed: 1},
			wantErr: true,
		},
		{
			name:    "over system bound",
			cfg:     WalkerConfig{Bounds: testBounds(), MinSpeed: 1, MaxSpeed: 5},
			wantErr: true,
		},
		{
			name:    "negative min",
			cfg:     WalkerConfig{Bounds: testBounds(), MinSpeed: -1, MaxSpeed: 1},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewWalker(tt.cfg, rng)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewWalker error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestWalkerStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w, err := NewWalker(WalkerConfig{Bounds: testBounds(), Start: radio.Point{X: 25, Y: 15}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for tick := sim.Tick(0); tick < 10*60*sim.TicksPerSecond; tick += 100 {
		p := w.At(tick)
		if !w.Bounds().Contains(p) {
			t.Fatalf("walker escaped bounds at %v: %v", tick, p)
		}
	}
}

func TestWalkerSpeedBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w, err := NewWalker(WalkerConfig{
		Bounds:   testBounds(),
		MinSpeed: 0.5,
		MaxSpeed: MaxWalkingSpeedMPS,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const step = sim.TicksPerSecond // 1 s sampling
	prev := w.At(0)
	for tick := step; tick < 5*60*sim.TicksPerSecond; tick += step {
		cur := w.At(tick)
		speed := prev.Dist(cur) / step.Seconds()
		// Displacement per second can exceed the leg speed only if a
		// waypoint turn happened mid-sample, which shortens it; the
		// upper bound holds regardless.
		if speed > MaxWalkingSpeedMPS+1e-9 {
			t.Fatalf("displacement speed %v m/s exceeds max at %v", speed, tick)
		}
		prev = cur
	}
}

func TestWalkerActuallyMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w, err := NewWalker(WalkerConfig{Bounds: testBounds()}, rng)
	if err != nil {
		t.Fatal(err)
	}
	start := w.At(0)
	moved := false
	for tick := sim.Tick(0); tick < 60*sim.TicksPerSecond; tick += 3200 {
		if w.At(tick).Dist(start) > 1 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("walker did not move a meter in a minute")
	}
}

func TestWalkerStartClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, err := NewWalker(WalkerConfig{
		Bounds: testBounds(),
		Start:  radio.Point{X: -100, Y: 100},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p := w.At(0); !w.Bounds().Contains(p) {
		t.Errorf("start %v outside bounds", p)
	}
}

func TestWalkerWithPauses(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w, err := NewWalker(WalkerConfig{
		Bounds:    testBounds(),
		PauseMean: 2 * sim.TicksPerSecond,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With pauses the walker still progresses and stays in bounds.
	for tick := sim.Tick(0); tick < 5*60*sim.TicksPerSecond; tick += 1000 {
		if !w.Bounds().Contains(w.At(tick)) {
			t.Fatal("pausing walker escaped bounds")
		}
	}
}

func TestWalkerDeterministic(t *testing.T) {
	sample := func(seed int64) []radio.Point {
		rng := rand.New(rand.NewSource(seed))
		w, err := NewWalker(WalkerConfig{Bounds: testBounds()}, rng)
		if err != nil {
			t.Fatal(err)
		}
		var pts []radio.Point
		for tick := sim.Tick(0); tick < 30*sim.TicksPerSecond; tick += 1600 {
			pts = append(pts, w.At(tick))
		}
		return pts
	}
	a, b := sample(42), sample(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
}

func TestCrossingEstimate(t *testing.T) {
	// The paper: 20 m / 1.3 m/s = 15.4 s.
	got := PaperCrossingEstimate()
	sec := got.Seconds()
	if sec < 15.3 || sec > 15.5 {
		t.Errorf("paper crossing estimate = %.2fs, want ~15.4s", sec)
	}
	if _, err := CrossingEstimate(0, 1); err == nil {
		t.Error("zero diameter accepted")
	}
	if _, err := CrossingEstimate(10, 0); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestMeasureCrossingAgreesWithChordGeometry(t *testing.T) {
	// Mean chord length of a circle with uniform perpendicular offset
	// is (pi/4)*2r; at fixed speed v the mean residence is that / v.
	rng := rand.New(rand.NewSource(7))
	r := 10.0
	v := 1.3
	got, err := MeasureCrossing(rng, r, v, v, 200000)
	if err != nil {
		t.Fatal(err)
	}
	want := (3.141592653589793 / 4) * 2 * r / v
	sec := got.Seconds()
	if sec < want*0.97 || sec > want*1.03 {
		t.Errorf("measured crossing = %.2fs, want ~%.2fs", sec, want)
	}
}

func TestMeasureCrossingValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := MeasureCrossing(rng, 0, 1, 1, 10); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := MeasureCrossing(rng, 10, 2, 1, 10); err == nil {
		t.Error("min>max accepted")
	}
	if _, err := MeasureCrossing(rng, 10, 1, 1.5, 0); err != nil {
		t.Errorf("samples<=0 should be clamped, got %v", err)
	}
}

func TestWalkerTimeMonotonicProperty(t *testing.T) {
	f := func(seed int64, steps []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		w, err := NewWalker(WalkerConfig{Bounds: testBounds()}, rng)
		if err != nil {
			return false
		}
		now := sim.Tick(0)
		for _, s := range steps {
			now += sim.Tick(s)
			if !w.Bounds().Contains(w.At(now)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
