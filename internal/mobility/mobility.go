// Package mobility models walking BIPS users. The paper's Section 5 sizing
// argument rests on two mobility facts: users walk at speeds in [0, 1.5]
// m/s (mean 1.3 m/s for a walking user) and a piconet's coverage area is a
// 20 m-diameter disc, so the average walking user spends about 15.4 s
// inside a cell. This package provides a bounded random-waypoint walker
// over a floor plan and the crossing-time estimator used by the policy
// experiment.
package mobility

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bips/internal/radio"
	"bips/internal/sim"
)

// Speed limits from the paper.
const (
	// MaxSpeedMPS is the fastest a mobile user moves (2 m/s is the
	// system bound in Section 2; 1.5 m/s the walking bound of
	// Section 5).
	MaxSpeedMPS = 2.0
	// MaxWalkingSpeedMPS bounds a normally walking user.
	MaxWalkingSpeedMPS = 1.5
	// MeanWalkingSpeedMPS is the paper's average walking speed used in
	// the 20 m / 1.3 m/s = 15.4 s estimate.
	MeanWalkingSpeedMPS = 1.3
)

// Rect is an axis-aligned floor-plan boundary.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p radio.Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Validate checks the rectangle has positive area.
func (r Rect) Validate() error {
	if r.MaxX <= r.MinX || r.MaxY <= r.MinY {
		return fmt.Errorf("mobility: degenerate bounds %+v", r)
	}
	return nil
}

// Clamp returns p clamped into the rectangle.
func (r Rect) Clamp(p radio.Point) radio.Point {
	return radio.Point{
		X: math.Max(r.MinX, math.Min(r.MaxX, p.X)),
		Y: math.Max(r.MinY, math.Min(r.MaxY, p.Y)),
	}
}

// WalkerConfig configures a random-waypoint walker.
type WalkerConfig struct {
	// Bounds is the floor-plan rectangle the walker stays inside.
	Bounds Rect
	// Start is the initial position; it is clamped into Bounds.
	Start radio.Point
	// MinSpeed and MaxSpeed bound the per-leg uniform speed draw in
	// m/s. Defaults: 0.5 and MaxWalkingSpeedMPS.
	MinSpeed, MaxSpeed float64
	// PauseMean is the mean of the exponential pause at each waypoint.
	// Zero means no pausing (continuous walking).
	PauseMean sim.Tick
}

func (c WalkerConfig) withDefaults() WalkerConfig {
	if c.MinSpeed == 0 {
		c.MinSpeed = 0.5
	}
	if c.MaxSpeed == 0 {
		c.MaxSpeed = MaxWalkingSpeedMPS
	}
	return c
}

// ErrBadSpeed is returned for invalid speed ranges.
var ErrBadSpeed = errors.New("mobility: invalid speed range")

// Walker is a deterministic random-waypoint walker: it repeatedly picks a
// uniform waypoint in the bounds, walks there at a uniform-random speed,
// optionally pauses, and repeats. Positions are sampled with At.
type Walker struct {
	cfg WalkerConfig
	rng *rand.Rand

	pos      radio.Point
	target   radio.Point
	speed    float64 // m/s
	legStart sim.Tick
	legEnd   sim.Tick
	pausing  bool
}

// NewWalker validates the configuration and returns a walker positioned at
// the clamped start point.
func NewWalker(cfg WalkerConfig, rng *rand.Rand) (*Walker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Bounds.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinSpeed <= 0 || cfg.MaxSpeed < cfg.MinSpeed || cfg.MaxSpeed > MaxSpeedMPS {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrBadSpeed, cfg.MinSpeed, cfg.MaxSpeed)
	}
	w := &Walker{
		cfg: cfg,
		rng: rng,
		pos: cfg.Bounds.Clamp(cfg.Start),
	}
	w.pickLeg(0)
	return w, nil
}

// pickLeg selects the next waypoint and speed starting at tick now.
func (w *Walker) pickLeg(now sim.Tick) {
	if w.cfg.PauseMean > 0 && !w.pausing {
		// Pause at the waypoint before moving on.
		w.pausing = true
		pause := sim.Tick(w.rng.ExpFloat64() * float64(w.cfg.PauseMean))
		w.target = w.pos
		w.legStart = now
		w.legEnd = now + pause
		return
	}
	w.pausing = false
	w.target = radio.Point{
		X: w.cfg.Bounds.MinX + w.rng.Float64()*(w.cfg.Bounds.MaxX-w.cfg.Bounds.MinX),
		Y: w.cfg.Bounds.MinY + w.rng.Float64()*(w.cfg.Bounds.MaxY-w.cfg.Bounds.MinY),
	}
	w.speed = w.cfg.MinSpeed + w.rng.Float64()*(w.cfg.MaxSpeed-w.cfg.MinSpeed)
	dist := w.pos.Dist(w.target)
	dur := sim.FromSeconds(dist / w.speed)
	if dur < 1 {
		dur = 1
	}
	w.legStart = now
	w.legEnd = now + dur
}

// At returns the walker position at tick now. Time must not go backwards
// between calls.
func (w *Walker) At(now sim.Tick) radio.Point {
	for now >= w.legEnd {
		w.pos = w.target
		w.pickLeg(w.legEnd)
	}
	if w.pausing || w.legEnd == w.legStart {
		return w.pos
	}
	frac := float64(now-w.legStart) / float64(w.legEnd-w.legStart)
	return radio.Point{
		X: w.pos.X + (w.target.X-w.pos.X)*frac,
		Y: w.pos.Y + (w.target.Y-w.pos.Y)*frac,
	}
}

// Bounds returns the walker's floor-plan rectangle.
func (w *Walker) Bounds() Rect { return w.cfg.Bounds }

// CrossingEstimate returns the paper's closed-form mean cell residence
// time: diameter / meanSpeed. With the defaults (20 m, 1.3 m/s) this is the
// 15.4 s that sizes the master operational cycle in Section 5.
func CrossingEstimate(diameterMeters, meanSpeedMPS float64) (sim.Tick, error) {
	if diameterMeters <= 0 || meanSpeedMPS <= 0 {
		return 0, fmt.Errorf("mobility: non-positive crossing parameters %v, %v",
			diameterMeters, meanSpeedMPS)
	}
	return sim.FromSeconds(diameterMeters / meanSpeedMPS), nil
}

// PaperCrossingEstimate is CrossingEstimate with the paper's constants:
// a 20 m cell diameter crossed at 1.3 m/s.
func PaperCrossingEstimate() sim.Tick {
	t, err := CrossingEstimate(2*radio.DefaultCoverageRadiusMeters, MeanWalkingSpeedMPS)
	if err != nil {
		// Unreachable: constants are positive.
		return 0
	}
	return t
}

// MeasureCrossing simulates straight-line transits of a disc cell of the
// given radius by walkers drawn from [minSpeed, maxSpeed] entering on a
// random chord, and returns the mean residence time. It cross-checks the
// closed-form estimate in the policy experiment.
func MeasureCrossing(rng *rand.Rand, radius, minSpeed, maxSpeed float64, samples int) (sim.Tick, error) {
	if radius <= 0 || minSpeed <= 0 || maxSpeed < minSpeed {
		return 0, fmt.Errorf("mobility: bad crossing parameters r=%v v=[%v,%v]",
			radius, minSpeed, maxSpeed)
	}
	if samples <= 0 {
		samples = 1
	}
	var total float64
	for i := 0; i < samples; i++ {
		// A random chord: entry point uniform on the circle, offset
		// uniform in (-r, r) perpendicular to the travel direction.
		off := (2*rng.Float64() - 1) * radius
		chord := 2 * math.Sqrt(radius*radius-off*off)
		speed := minSpeed + rng.Float64()*(maxSpeed-minSpeed)
		total += chord / speed
	}
	return sim.FromSeconds(total / float64(samples)), nil
}
