// Package workstation implements the BIPS workstation of Section 2: the
// fixed machine in each significant room whose main task is discovering and
// enrolling mobile users entering its coverage area. It drives the HCI with
// the master scheduling policy the paper derives — a continuous discovery
// slot at the start of every operational cycle (3.84 s of every 15.4 s by
// default, ~24% tracking load) — converts enrollments and departures into
// presence deltas, and pushes only the deltas to the central server.
package workstation

import (
	"fmt"
	"sort"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/hci"
	"bips/internal/inquiry"
	"bips/internal/mobility"
	"bips/internal/sim"
	"bips/internal/wire"
)

// PaperCycle returns the operational cycle Section 5 derives: a 3.84 s
// discovery slot in a 15.4 s cycle (the mean time a walking user spends
// inside a 20 m cell at 1.3 m/s).
func PaperCycle() inquiry.DutyCycle {
	return inquiry.DutyCycle{
		Inquiry: sim.FromSeconds(3.84),
		Period:  mobility.PaperCrossingEstimate(),
	}
}

// Reporter receives presence deltas. The live system sends them to the
// central server over the LAN; simulations may apply them directly.
type Reporter interface {
	Report(p wire.Presence) error
}

// ReporterFunc adapts a function to Reporter.
type ReporterFunc func(p wire.Presence) error

// Report implements Reporter.
func (f ReporterFunc) Report(p wire.Presence) error { return f(p) }

// BatchReporter is a Reporter that additionally accepts whole delta
// batches — one call is one sequenced ingest frame (ingest.Client
// implements it). A workstation with a batch flush policy prefers it;
// plain Reporters receive the batch delta by delta.
type BatchReporter interface {
	Reporter
	ReportBatch(deltas []wire.Presence) error
}

// Config configures a workstation.
type Config struct {
	// Room is the room (piconet/location granule) this workstation
	// covers.
	Room graph.NodeID
	// Cycle is the operational cycle; the zero value means PaperCycle.
	Cycle inquiry.DutyCycle
	// BatchMax, when > 0, buffers presence deltas and flushes them as a
	// batch once BatchMax are pending — the ingest write path's
	// max-batch policy. 0 reports every delta immediately (the
	// pre-ingest behavior).
	BatchMax int
	// BatchDelay bounds how long a buffered delta may wait before a
	// partial batch is flushed anyway (the max-delay policy), driven by
	// the simulation clock so flush boundaries are deterministic for a
	// given seed. 0 with BatchMax > 0 defaults to the operational
	// cycle's period.
	BatchDelay sim.Tick
}

// Stats counts workstation activity.
type Stats struct {
	Cycles       int
	Discoveries  int
	Enrollments  int
	Departures   int
	ReportErrors int
	// Batches counts flushed delta batches (0 when unbuffered).
	Batches int
	// Buffered is the number of deltas currently awaiting flush.
	Buffered int
}

// Workstation tracks the mobile devices in one room.
type Workstation struct {
	kernel   *sim.Kernel
	hci      *hci.HCI
	cfg      Config
	reporter Reporter

	present map[baseband.BDAddr]bool
	pending []baseband.BDAddr
	queued  map[baseband.BDAddr]bool

	// buf holds deltas awaiting a batch flush (BatchMax > 0). Flushes
	// happen on max-batch (buffer full) and max-delay (the periodic
	// flush tick) — both functions of simulation state only, so a rerun
	// with the same seed cuts byte-identical batches.
	buf       []wire.Presence
	stopFlush func()

	running   bool
	stopCycle func()
	stats     Stats
}

// New builds a workstation on top of an HCI controller. The workstation
// takes ownership of the controller's event stream.
func New(k *sim.Kernel, ctrl *hci.HCI, cfg Config, rep Reporter) (*Workstation, error) {
	if cfg.Cycle == (inquiry.DutyCycle{}) {
		cfg.Cycle = PaperCycle()
	}
	if err := cfg.Cycle.Validate(); err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, fmt.Errorf("workstation: nil reporter")
	}
	if cfg.BatchMax < 0 {
		return nil, fmt.Errorf("workstation: negative BatchMax")
	}
	if cfg.BatchMax > 0 && cfg.BatchDelay <= 0 {
		cfg.BatchDelay = cfg.Cycle.Period
	}
	w := &Workstation{
		kernel:   k,
		hci:      ctrl,
		cfg:      cfg,
		reporter: rep,
		present:  make(map[baseband.BDAddr]bool),
		queued:   make(map[baseband.BDAddr]bool),
	}
	ctrl.OnEvent = w.onEvent
	return w, nil
}

// Room returns the covered room.
func (w *Workstation) Room() graph.NodeID { return w.cfg.Room }

// Stats returns a snapshot of the counters.
func (w *Workstation) Stats() Stats {
	st := w.stats
	st.Buffered = len(w.buf)
	return st
}

// Present returns the devices currently believed present, in ascending
// order.
func (w *Workstation) Present() []baseband.BDAddr {
	out := make([]baseband.BDAddr, 0, len(w.present))
	for a := range w.present {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Start begins the operational cycle (and, when batching, the periodic
// max-delay flush tick).
func (w *Workstation) Start() {
	if w.running {
		return
	}
	w.running = true
	w.runCycle(w.kernel)
	w.stopCycle = w.kernel.Ticker(w.cfg.Cycle.Period, w.runCycle)
	if w.cfg.BatchMax > 0 {
		w.stopFlush = w.kernel.Ticker(w.cfg.BatchDelay, func(*sim.Kernel) { w.FlushBatch() })
	}
}

// Stop halts the cycle and flushes any buffered deltas. Presence state
// is retained.
func (w *Workstation) Stop() {
	if !w.running {
		return
	}
	w.running = false
	if w.stopCycle != nil {
		w.stopCycle()
		w.stopCycle = nil
	}
	if w.stopFlush != nil {
		w.stopFlush()
		w.stopFlush = nil
	}
	w.FlushBatch()
	if err := w.hci.InquiryCancel(); err != nil {
		w.stats.ReportErrors++
	}
}

func (w *Workstation) runCycle(*sim.Kernel) {
	if !w.running {
		return
	}
	w.stats.Cycles++
	if err := w.hci.Inquiry(w.cfg.Cycle.Inquiry); err != nil {
		// Still inquiring (overrun): skip this cycle's slot.
		return
	}
}

func (w *Workstation) onEvent(e hci.Event) {
	switch e.Type {
	case hci.EventInquiryResult:
		w.stats.Discoveries++
		if !w.present[e.Addr] && !w.queued[e.Addr] {
			w.queued[e.Addr] = true
			w.pending = append(w.pending, e.Addr)
		}
	case hci.EventInquiryComplete:
		w.connectNext()
	case hci.EventConnectionComplete:
		if e.Status == hci.StatusOK {
			w.stats.Enrollments++
			w.present[e.Addr] = true
			w.report(e.Addr, true, e.At)
		}
		w.connectNext()
	case hci.EventDisconnectionComplete:
		if w.present[e.Addr] {
			delete(w.present, e.Addr)
			w.stats.Departures++
			w.report(e.Addr, false, e.At)
		}
	}
}

// connectNext pages the next pending device. Paging proceeds during the
// connection-management part of the cycle; the HCI serialises pages.
func (w *Workstation) connectNext() {
	for len(w.pending) > 0 {
		addr := w.pending[0]
		w.pending = w.pending[1:]
		delete(w.queued, addr)
		if w.present[addr] {
			continue
		}
		err := w.hci.CreateConnection(addr)
		switch {
		case err == nil:
			return // completion event will call connectNext again
		default:
			// Busy or unknown: drop this attempt; the device
			// will be rediscovered next cycle.
			continue
		}
	}
}

func (w *Workstation) report(addr baseband.BDAddr, present bool, at sim.Tick) {
	p := wire.Presence{
		Device:  wire.FormatAddr(addr),
		Room:    w.cfg.Room,
		At:      at,
		Present: present,
	}
	if w.cfg.BatchMax > 0 {
		w.buf = append(w.buf, p)
		if len(w.buf) >= w.cfg.BatchMax {
			w.FlushBatch()
		}
		return
	}
	if err := w.reporter.Report(p); err != nil {
		w.stats.ReportErrors++
	}
}

// FlushBatch hands the buffered deltas to the reporter as one batch (a
// BatchReporter gets them in one call — one ingest frame; a plain
// Reporter gets them delta by delta, preserving order). It is invoked
// on max-batch, on the max-delay tick, and on Stop; callers may also
// flush explicitly at deterministic points of their own.
func (w *Workstation) FlushBatch() {
	if len(w.buf) == 0 {
		return
	}
	batch := w.buf
	w.buf = nil
	w.stats.Batches++
	if br, ok := w.reporter.(BatchReporter); ok {
		if err := br.ReportBatch(batch); err != nil {
			w.stats.ReportErrors++
		}
		return
	}
	for _, p := range batch {
		if err := w.reporter.Report(p); err != nil {
			w.stats.ReportErrors++
		}
	}
}
