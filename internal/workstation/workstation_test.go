package workstation

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bips/internal/baseband"
	"bips/internal/hci"
	"bips/internal/inquiry"
	"bips/internal/page"
	"bips/internal/piconet"
	"bips/internal/radio"
	"bips/internal/sim"
	"bips/internal/wire"
)

type recorder struct {
	reports []wire.Presence
	fail    bool
}

func (r *recorder) Report(p wire.Presence) error {
	if r.fail {
		return errors.New("recorder: injected failure")
	}
	r.reports = append(r.reports, p)
	return nil
}

func testDevice(rng *rand.Rand, addr baseband.BDAddr) piconet.Device {
	offset := sim.Tick(rng.Int63n(int64(2 * baseband.TInquiryScanTicks)))
	return piconet.Device{
		Slave: inquiry.NewSlave(inquiry.SlaveConfig{
			Addr:        addr,
			ClockOffset: offset,
			ScanPhase:   baseband.FreqIndex(rng.Intn(baseband.NumInquiryFreqs)),
			Mode:        inquiry.ScanAlternating,
		}),
		Scanner: page.Scanner{
			Addr:                  addr,
			ClockOffset:           offset,
			AlternatesWithInquiry: true,
			Connectable:           true,
		},
	}
}

func TestPaperCycle(t *testing.T) {
	c := PaperCycle()
	if got := c.Inquiry.Seconds(); math.Abs(got-3.84) > 1e-9 {
		t.Errorf("inquiry slot = %v, want 3.84s", got)
	}
	if got := c.Period.Seconds(); math.Abs(got-15.3846) > 0.01 {
		t.Errorf("period = %v, want ~15.4s", got)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	k := sim.NewKernel(1)
	ctrl := hci.New(k, hci.Config{Addr: 1}, nil)
	defer ctrl.Close()
	if _, err := New(k, ctrl, Config{Room: 1}, nil); err == nil {
		t.Error("nil reporter accepted")
	}
	if _, err := New(k, ctrl, Config{
		Room:  1,
		Cycle: inquiry.DutyCycle{Inquiry: 10, Period: 5},
	}, &recorder{}); err == nil {
		t.Error("invalid cycle accepted")
	}
}

func TestTrackAndReportPresence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := sim.NewKernel(rng.Int63())
	ctrl := hci.New(k, hci.Config{Addr: 1}, nil)
	defer ctrl.Close()
	rec := &recorder{}
	ws, err := New(k, ctrl, Config{Room: 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AttachDevice(testDevice(rng, 0xB1))
	ws.Start()
	k.RunUntil(90 * sim.TicksPerSecond)
	ws.Stop()

	if len(rec.reports) != 1 {
		t.Fatalf("reports = %+v, want one presence", rec.reports)
	}
	p := rec.reports[0]
	if !p.Present || p.Room != 4 || p.Device != wire.FormatAddr(0xB1) {
		t.Errorf("report = %+v", p)
	}
	got := ws.Present()
	if len(got) != 1 || got[0] != 0xB1 {
		t.Errorf("Present = %v", got)
	}
	st := ws.Stats()
	if st.Cycles == 0 || st.Discoveries == 0 || st.Enrollments != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDepartureReportsAbsence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	k := sim.NewKernel(rng.Int63())
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: 1, Pos: radio.Point{X: 0, Y: 0}})
	med.Place(radio.Station{Addr: 0xB1, Pos: radio.Point{X: 3, Y: 0}})
	ctrl := hci.New(k, hci.Config{Addr: 1}, med)
	defer ctrl.Close()
	rec := &recorder{}
	ws, err := New(k, ctrl, Config{Room: 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AttachDevice(testDevice(rng, 0xB1))
	ws.Start()
	k.RunUntil(90 * sim.TicksPerSecond)
	if len(ws.Present()) != 1 {
		t.Fatalf("device not enrolled (stats %+v)", ws.Stats())
	}
	med.Move(0xB1, radio.Point{X: 99, Y: 0})
	k.RunUntil(120 * sim.TicksPerSecond)
	ws.Stop()

	if len(ws.Present()) != 0 {
		t.Error("departed device still present")
	}
	last := rec.reports[len(rec.reports)-1]
	if last.Present {
		t.Errorf("last report = %+v, want absence", last)
	}
	if ws.Stats().Departures != 1 {
		t.Errorf("departures = %d", ws.Stats().Departures)
	}
}

func TestDeltaSemanticsOneReportPerChange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k := sim.NewKernel(rng.Int63())
	ctrl := hci.New(k, hci.Config{Addr: 1}, nil)
	defer ctrl.Close()
	rec := &recorder{}
	ws, err := New(k, ctrl, Config{Room: 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AttachDevice(testDevice(rng, 0xB1))
	ws.Start()
	// Many cycles: the stationary device must be reported exactly once
	// even though each inquiry rediscovers... (enrolled devices are not
	// re-enrolled).
	k.RunUntil(200 * sim.TicksPerSecond)
	ws.Stop()
	if len(rec.reports) != 1 {
		t.Errorf("reports = %d, want 1 (delta semantics)", len(rec.reports))
	}
}

func TestReporterFailureCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	k := sim.NewKernel(rng.Int63())
	ctrl := hci.New(k, hci.Config{Addr: 1}, nil)
	defer ctrl.Close()
	rec := &recorder{fail: true}
	ws, err := New(k, ctrl, Config{Room: 4}, rec)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AttachDevice(testDevice(rng, 0xB1))
	ws.Start()
	k.RunUntil(90 * sim.TicksPerSecond)
	ws.Stop()
	if ws.Stats().ReportErrors == 0 {
		t.Error("failed reports not counted")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	k := sim.NewKernel(1)
	ctrl := hci.New(k, hci.Config{Addr: 1}, nil)
	defer ctrl.Close()
	ws, err := New(k, ctrl, Config{Room: 1}, &recorder{})
	if err != nil {
		t.Fatal(err)
	}
	ws.Start()
	ws.Start()
	k.RunUntil(sim.TicksPerSecond)
	ws.Stop()
	ws.Stop()
	cycles := ws.Stats().Cycles
	k.RunUntil(60 * sim.TicksPerSecond)
	if ws.Stats().Cycles != cycles {
		t.Error("cycle ran after Stop")
	}
}

func TestMultipleDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k := sim.NewKernel(rng.Int63())
	ctrl := hci.New(k, hci.Config{Addr: 1}, nil)
	defer ctrl.Close()
	rec := &recorder{}
	ws, err := New(k, ctrl, Config{Room: 2}, rec)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		ctrl.AttachDevice(testDevice(rng, baseband.BDAddr(0xB1+i)))
	}
	ws.Start()
	k.RunUntil(150 * sim.TicksPerSecond)
	ws.Stop()
	if got := len(ws.Present()); got != n {
		t.Errorf("present = %d, want %d (stats %+v)", got, n, ws.Stats())
	}
}
