package workstation

import (
	"math/rand"
	"reflect"
	"testing"

	"bips/internal/baseband"
	"bips/internal/hci"
	"bips/internal/radio"
	"bips/internal/sim"
	"bips/internal/wire"
)

// batchRecorder records batch flushes and, separately, any per-delta
// fallback reports.
type batchRecorder struct {
	batches [][]wire.Presence
	singles []wire.Presence
}

func (r *batchRecorder) Report(p wire.Presence) error {
	r.singles = append(r.singles, p)
	return nil
}

func (r *batchRecorder) ReportBatch(deltas []wire.Presence) error {
	r.batches = append(r.batches, deltas)
	return nil
}

func (r *batchRecorder) all() []wire.Presence {
	var out []wire.Presence
	for _, b := range r.batches {
		out = append(out, b...)
	}
	return append(out, r.singles...)
}

// runTrackingSim drives a small cell with moving devices and returns
// the reporter's observed delta stream plus the workstation stats.
func runTrackingSim(t *testing.T, seed int64, cfg Config, rec Reporter) Stats {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	k := sim.NewKernel(rng.Int63())
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: 1, Pos: radio.Point{X: 0, Y: 0}})
	for i := 0; i < 3; i++ {
		med.Place(radio.Station{Addr: baseband.BDAddr(0xB1 + uint64(i)), Pos: radio.Point{X: float64(i), Y: 0}})
	}
	ctrl := hci.New(k, hci.Config{Addr: 1}, med)
	defer ctrl.Close()
	ws, err := New(k, ctrl, cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ctrl.AttachDevice(testDevice(rng, baseband.BDAddr(0xB1+uint64(i))))
	}
	ws.Start()
	k.RunUntil(60 * sim.TicksPerSecond)
	// Move one device out of range so absences join the stream.
	med.Move(0xB1, radio.Point{X: 99, Y: 0})
	k.RunUntil(150 * sim.TicksPerSecond)
	ws.Stop()
	return ws.Stats()
}

// TestBatchedStreamMatchesUnbatched: buffering must reorder nothing and
// lose nothing — the concatenated batches are exactly the per-delta
// stream of an identical unbuffered run.
func TestBatchedStreamMatchesUnbatched(t *testing.T) {
	plain := &recorder{}
	runTrackingSim(t, 11, Config{Room: 4}, plain)

	batched := &batchRecorder{}
	st := runTrackingSim(t, 11, Config{Room: 4, BatchMax: 4, BatchDelay: 5 * sim.TicksPerSecond}, batched)

	if len(plain.reports) == 0 {
		t.Fatal("simulation produced no deltas; test is vacuous")
	}
	if len(batched.singles) != 0 {
		t.Errorf("BatchReporter received %d per-delta reports, want 0", len(batched.singles))
	}
	if !reflect.DeepEqual(batched.all(), plain.reports) {
		t.Errorf("batched stream diverges:\nbatched: %+v\nplain:   %+v", batched.all(), plain.reports)
	}
	if st.Batches == 0 || st.Batches != len(batched.batches) {
		t.Errorf("stats.Batches = %d, recorder saw %d", st.Batches, len(batched.batches))
	}
	if st.Buffered != 0 {
		t.Errorf("Buffered = %d after Stop, want 0 (Stop flushes)", st.Buffered)
	}
	for _, b := range batched.batches {
		if len(b) > 4 {
			t.Errorf("batch of %d deltas exceeds BatchMax 4", len(b))
		}
	}
}

// TestBatchFlushDeterminism: the same seed must cut byte-identical
// batches — the property station resume-by-sequence relies on.
func TestBatchFlushDeterminism(t *testing.T) {
	a, b := &batchRecorder{}, &batchRecorder{}
	cfg := Config{Room: 4, BatchMax: 3, BatchDelay: 7 * sim.TicksPerSecond}
	runTrackingSim(t, 23, cfg, a)
	runTrackingSim(t, 23, cfg, b)
	if !reflect.DeepEqual(a.batches, b.batches) {
		t.Errorf("same seed cut different batches:\nA: %+v\nB: %+v", a.batches, b.batches)
	}
}

// TestBatchFallbackToPlainReporter: with a batch policy but a plain
// Reporter, deltas still arrive one by one, in order.
func TestBatchFallbackToPlainReporter(t *testing.T) {
	plain := &recorder{}
	runTrackingSim(t, 31, Config{Room: 4}, plain)
	buffered := &recorder{}
	runTrackingSim(t, 31, Config{Room: 4, BatchMax: 8}, buffered)
	if len(plain.reports) == 0 {
		t.Fatal("no deltas; test is vacuous")
	}
	if !reflect.DeepEqual(buffered.reports, plain.reports) {
		t.Errorf("fallback stream diverges:\nbuffered: %+v\nplain:    %+v", buffered.reports, plain.reports)
	}
}

func TestBatchConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	ctrl := hci.New(k, hci.Config{Addr: 1}, nil)
	defer ctrl.Close()
	if _, err := New(k, ctrl, Config{Room: 1, BatchMax: -1}, &recorder{}); err == nil {
		t.Error("negative BatchMax accepted")
	}
	ws, err := New(k, ctrl, Config{Room: 1, BatchMax: 5}, &recorder{})
	if err != nil {
		t.Fatal(err)
	}
	if ws.cfg.BatchDelay != ws.cfg.Cycle.Period {
		t.Errorf("BatchDelay default = %v, want cycle period %v", ws.cfg.BatchDelay, ws.cfg.Cycle.Period)
	}
}
