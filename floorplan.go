package bips

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"bips/internal/building"
	"bips/internal/radio"
)

// ErrBadPlan reports an invalid floor plan.
var ErrBadPlan = errors.New("bips: invalid floor plan")

// defaultSpacing is the room spacing (meters) the generators fall back to
// when none is given: the academic-department preset's 12 m grid, which
// keeps adjacent 10 m coverage discs from containing each other's centers.
const defaultSpacing = 12.0

// FloorPlan is a declarative building description: named rooms at floor
// coordinates and the corridors connecting them. It is the unit of
// deployment topology in the public API — build one with AddRoom/Connect
// (or the GridPlan/CorridorPlan generators, or LoadFloorPlan for JSON
// files) and pass it to New via WithBuilding. The zero value is an empty
// plan ready for AddRoom.
//
// Room names are the public identifiers used throughout the Service API
// (AddStationaryUser, PathBetween, ...). Compilation assigns the internal
// room ids and workstation radio addresses in declaration order.
type FloorPlan struct {
	// Name labels the plan (optional, informational).
	Name string `json:"name,omitempty"`
	// Rooms are the significant rooms, each hosting one workstation.
	Rooms []PlanRoom `json:"rooms"`
	// Corridors are the walkable connections between rooms.
	Corridors []PlanCorridor `json:"corridors"`
}

// PlanRoom is one room of a FloorPlan.
type PlanRoom struct {
	Name string `json:"name"`
	// X, Y position the room's workstation on the floor, in meters.
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// PlanCorridor connects two rooms of a FloorPlan by name.
type PlanCorridor struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Distance is the walking distance in meters; zero means "use the
	// Euclidean distance between the room positions".
	Distance float64 `json:"distance,omitempty"`
}

// NewFloorPlan returns an empty named plan for fluent construction:
//
//	plan := bips.NewFloorPlan("wing-b").
//		AddRoom("Entrance", 0, 0).
//		AddRoom("Hall", 15, 0).
//		Connect("Entrance", "Hall")
func NewFloorPlan(name string) *FloorPlan {
	return &FloorPlan{Name: name}
}

// AddRoom appends a room at (x, y) meters and returns the plan for
// chaining.
func (p *FloorPlan) AddRoom(name string, x, y float64) *FloorPlan {
	p.Rooms = append(p.Rooms, PlanRoom{Name: name, X: x, Y: y})
	return p
}

// Connect appends a corridor between two rooms at their Euclidean
// distance and returns the plan for chaining.
func (p *FloorPlan) Connect(from, to string) *FloorPlan {
	p.Corridors = append(p.Corridors, PlanCorridor{From: from, To: to})
	return p
}

// ConnectDistance appends a corridor with an explicit walking distance
// (meters), for paths longer than the straight line — staircases, detours.
func (p *FloorPlan) ConnectDistance(from, to string, meters float64) *FloorPlan {
	p.Corridors = append(p.Corridors, PlanCorridor{From: from, To: to, Distance: meters})
	return p
}

// Validate checks the plan: at least one room, unique non-empty room
// names, corridors referencing existing rooms, no self-loops, no negative
// distances. Compile validates implicitly; Validate is for early feedback
// while assembling plans.
func (p *FloorPlan) Validate() error {
	if len(p.Rooms) == 0 {
		return fmt.Errorf("%w: no rooms", ErrBadPlan)
	}
	seen := make(map[string]bool, len(p.Rooms))
	for i, r := range p.Rooms {
		if r.Name == "" {
			return fmt.Errorf("%w: room %d has no name", ErrBadPlan, i)
		}
		if seen[r.Name] {
			return fmt.Errorf("%w: duplicate room name %q", ErrBadPlan, r.Name)
		}
		seen[r.Name] = true
	}
	for _, c := range p.Corridors {
		if !seen[c.From] {
			return fmt.Errorf("%w: corridor end %q is not a room", ErrBadPlan, c.From)
		}
		if !seen[c.To] {
			return fmt.Errorf("%w: corridor end %q is not a room", ErrBadPlan, c.To)
		}
		if c.From == c.To {
			return fmt.Errorf("%w: corridor %q-%q is a self-loop", ErrBadPlan, c.From, c.To)
		}
		if c.Distance < 0 {
			return fmt.Errorf("%w: corridor %q-%q has negative distance", ErrBadPlan, c.From, c.To)
		}
	}
	return nil
}

// Compile validates the plan and builds the immutable internal topology:
// room ids and workstation addresses assigned in declaration order, the
// navigation graph assembled, and all shortest paths precomputed (the
// paper's off-line startup procedure). External callers normally never
// need the result — pass the plan to WithBuilding instead; Compile is
// exported for the in-module commands that wire internal components
// directly.
func (p *FloorPlan) Compile() (*building.Building, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ids := make(map[string]building.RoomID, len(p.Rooms))
	rooms := make([]building.Room, 0, len(p.Rooms))
	for i, r := range p.Rooms {
		id := building.RoomID(i + 1)
		ids[r.Name] = id
		rooms = append(rooms, building.Room{
			ID:      id,
			Name:    r.Name,
			Center:  radio.Point{X: r.X, Y: r.Y},
			Station: building.StationAddr(i + 1),
		})
	}
	corridors := make([]building.Corridor, 0, len(p.Corridors))
	for _, c := range p.Corridors {
		corridors = append(corridors, building.Corridor{
			A: ids[c.From], B: ids[c.To], Distance: c.Distance,
		})
	}
	bld, err := building.New(rooms, corridors)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPlan, err)
	}
	return bld, nil
}

// JSON renders the plan as indented JSON, the on-disk format read back by
// LoadFloorPlan and the -plan flag of bips-sim and bips-server.
func (p *FloorPlan) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bips: encode plan: %w", err)
	}
	return append(out, '\n'), nil
}

// Save writes the plan as JSON to path.
func (p *FloorPlan) Save(path string) error {
	data, err := p.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ParseFloorPlan decodes a JSON plan and validates it.
func ParseFloorPlan(data []byte) (*FloorPlan, error) {
	var p FloorPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPlan, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFloorPlan reads and validates a JSON plan file.
func LoadFloorPlan(path string) (*FloorPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bips: load plan: %w", err)
	}
	p, err := ParseFloorPlan(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// GridPlan generates a cols x rows grid of rooms spaced spacing meters
// apart, every room connected to its right and lower neighbors — the
// floor shape of an open-plan office or exhibition hall. Rooms are named
// "Room A1".."Room A<cols>" for the first row, "Room B1".. for the
// second, and so on. A non-positive spacing selects the 12 m default.
func GridPlan(cols, rows int, spacing float64) *FloorPlan {
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	if spacing <= 0 {
		spacing = defaultSpacing
	}
	p := NewFloorPlan(fmt.Sprintf("grid-%dx%d", cols, rows))
	name := func(row, col int) string {
		return fmt.Sprintf("Room %s%d", rowLabel(row), col+1)
	}
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			p.AddRoom(name(row, col), float64(col)*spacing, float64(row)*spacing)
		}
	}
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			if col+1 < cols {
				p.Connect(name(row, col), name(row, col+1))
			}
			if row+1 < rows {
				p.Connect(name(row, col), name(row+1, col))
			}
		}
	}
	return p
}

// rowLabel renders row indices as spreadsheet-style letters: A..Z, AA...
func rowLabel(row int) string {
	label := ""
	for {
		label = string(rune('A'+row%26)) + label
		row = row/26 - 1
		if row < 0 {
			return label
		}
	}
}

// CorridorPlan generates n rooms in a single line spaced spacing meters
// apart, each connected to the next — the long-hallway shape of a hotel
// floor or a hospital ward. Rooms are named "Room 1".."Room <n>". A
// non-positive spacing selects the 12 m default.
func CorridorPlan(n int, spacing float64) *FloorPlan {
	if n < 1 {
		n = 1
	}
	if spacing <= 0 {
		spacing = defaultSpacing
	}
	p := NewFloorPlan(fmt.Sprintf("corridor-%d", n))
	name := func(i int) string { return fmt.Sprintf("Room %d", i+1) }
	for i := 0; i < n; i++ {
		p.AddRoom(name(i), float64(i)*spacing, 0)
	}
	for i := 0; i+1 < n; i++ {
		p.Connect(name(i), name(i+1))
	}
	return p
}

// AcademicPlan returns the built-in academic-department preset as an
// editable FloorPlan: two parallel five-room corridors with stairwell
// cross-links, the environment the paper's introduction motivates. It
// compiles to the exact building New deploys by default, so it is the
// natural starting point for customized plans (and for -plan files:
// AcademicPlan().Save("dept.json")).
func AcademicPlan() *FloorPlan {
	names := []string{
		"Lobby", "Office A", "Office B", "Lab 1", "Lab 2",
		"Library", "Seminar Room", "Office C", "Office D", "Cafeteria",
	}
	p := NewFloorPlan("academic-department")
	for i, name := range names {
		col := i % 5
		row := i / 5
		p.AddRoom(name, float64(col)*defaultSpacing, float64(row)*defaultSpacing)
	}
	// North corridor, south corridor, stairwell cross-links.
	for _, pair := range [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{5, 6}, {6, 7}, {7, 8}, {8, 9},
		{0, 5}, {2, 7}, {4, 9},
	} {
		p.Connect(names[pair[0]], names[pair[1]])
	}
	return p
}
