package bips

// The public face of the history analytics engine: contact tracing,
// occupancy time series and dwell-time distributions, all computed from
// the room → presence-interval index that mirrors the movement history
// behind LocateAt and Trajectory. Times are simulated durations measured
// from the deployment's start, exactly like LocateAt's at parameter; all
// windows are half-open [from, to).

import (
	"time"

	"bips/internal/graph"
	"bips/internal/registry"
	"bips/internal/sim"
	"bips/internal/wire"
)

// Contact is one entry of a contact trace: a device that shared a room
// with the traced user during the queried window.
type Contact struct {
	// User is the userid bound to the device, when one is logged in;
	// empty for a device whose binding has since been released.
	User   string
	Device string
	// Overlap is the total co-presence time within the window.
	Overlap time.Duration
	// Rooms are the names of the rooms the contact happened in.
	Rooms []string
	// First and Last bound the co-presence: the start of the earliest
	// overlap and the end of the latest one.
	First time.Duration
	Last  time.Duration
}

// OccupancyPoint is one bucket of an occupancy time series: how many
// distinct devices were present at some instant of the bucket.
type OccupancyPoint struct {
	At    time.Duration
	Count int
}

// DwellStats summarizes a dwell-time distribution: one sample per
// presence run clipped to the queried window.
type DwellStats struct {
	Samples int
	Mean    time.Duration
	Stddev  time.Duration
	Min     time.Duration
	Max     time.Duration
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
}

// Contacts answers the contact-tracing query on behalf of querier: every
// device that shared a room with target during [from, to), with at least
// minOverlap of total co-presence (minOverlap <= 0 means any positive
// overlap). Contacts are ordered by descending overlap. The querier
// needs the locate right and the target must be logged in and trackable,
// exactly like Locate.
func (s *Service) Contacts(querier, target string, from, to, minOverlap time.Duration) ([]Contact, error) {
	res, err := s.sys.Contacts(registry.UserID(querier), registry.UserID(target),
		sim.FromDuration(from), sim.FromDuration(to), sim.FromDuration(minOverlap))
	if err != nil {
		return nil, err
	}
	out := make([]Contact, 0, len(res.Contacts))
	for _, c := range res.Contacts {
		rooms := make([]string, 0, len(c.Rooms))
		for _, id := range c.Rooms {
			name := ""
			if r, ok := s.sys.Building.Room(id); ok {
				name = r.Name
			}
			rooms = append(rooms, name)
		}
		out = append(out, Contact{
			User: c.User, Device: c.Device,
			Overlap: c.Overlap.Duration(), Rooms: rooms,
			First: c.First.Duration(), Last: c.Last.Duration(),
		})
	}
	return out, nil
}

// Occupancy answers the occupancy time-series query on behalf of
// querier: for each bucket of [from, to), how many distinct devices were
// present in the named rooms (a single room or a zone of several). The
// final bucket may cover less than a full bucket width. The querier
// needs the locate right.
func (s *Service) Occupancy(querier string, rooms []string, from, to, bucket time.Duration) ([]OccupancyPoint, error) {
	ids := make([]graph.NodeID, 0, len(rooms))
	for _, name := range rooms {
		r, err := s.roomByName(name)
		if err != nil {
			return nil, err
		}
		ids = append(ids, r.ID)
	}
	res, err := s.sys.Occupancy(registry.UserID(querier), ids,
		sim.FromDuration(from), sim.FromDuration(to), sim.FromDuration(bucket))
	if err != nil {
		return nil, err
	}
	out := make([]OccupancyPoint, 0, len(res.Buckets))
	for _, p := range res.Buckets {
		out = append(out, OccupancyPoint{At: p.At.Duration(), Count: p.Count})
	}
	return out, nil
}

// DwellInRoom answers the per-room dwell-time distribution on behalf of
// querier: how long visitors of the named room stayed, over [from, to).
// The querier needs the locate right.
func (s *Service) DwellInRoom(querier, room string, from, to time.Duration) (DwellStats, error) {
	r, err := s.roomByName(room)
	if err != nil {
		return DwellStats{}, err
	}
	res, err := s.sys.DwellRoom(registry.UserID(querier), r.ID,
		sim.FromDuration(from), sim.FromDuration(to))
	if err != nil {
		return DwellStats{}, err
	}
	return dwellStats(res), nil
}

// DwellOf answers the per-user dwell-time distribution on behalf of
// querier: how long target stayed in each room they visited, over
// [from, to). Access checks are Locate's.
func (s *Service) DwellOf(querier, target string, from, to time.Duration) (DwellStats, error) {
	res, err := s.sys.DwellOf(registry.UserID(querier), registry.UserID(target),
		sim.FromDuration(from), sim.FromDuration(to))
	if err != nil {
		return DwellStats{}, err
	}
	return dwellStats(res), nil
}

func dwellStats(r wire.DwellResult) DwellStats {
	return DwellStats{
		Samples: r.Samples,
		Mean:    time.Duration(r.Mean * float64(sim.TickDuration)),
		Stddev:  time.Duration(r.Stddev * float64(sim.TickDuration)),
		Min:     r.Min.Duration(),
		Max:     r.Max.Duration(),
		P50:     r.P50.Duration(),
		P90:     r.P90.Duration(),
		P99:     r.P99.Duration(),
	}
}
