package bips

import (
	"errors"
	"testing"
	"time"
)

func newService(t *testing.T, seed int64) *Service {
	t.Helper()
	svc, err := New(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	svc.MustRegister("alice", "pw")
	svc.MustRegister("bob", "pw")
	return svc
}

func TestRooms(t *testing.T) {
	svc := newService(t, 1)
	rooms := svc.Rooms()
	if len(rooms) != 10 {
		t.Fatalf("rooms = %v", rooms)
	}
	if rooms[0] != "Lobby" || rooms[9] != "Cafeteria" {
		t.Errorf("rooms = %v", rooms)
	}
}

func TestUnknownRoomRejected(t *testing.T) {
	svc := newService(t, 1)
	if _, err := svc.AddStationaryUser("alice", "pw", "Dungeon"); !errors.Is(err, ErrUnknownRoom) {
		t.Errorf("error = %v", err)
	}
}

func TestLocateAndPath(t *testing.T) {
	svc := newService(t, 2)
	if _, err := svc.AddStationaryUser("alice", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddStationaryUser("bob", "pw", "Cafeteria"); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Stop()
	svc.Run(90 * time.Second)

	loc, err := svc.Locate("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if loc.RoomName != "Cafeteria" {
		t.Errorf("bob located in %q", loc.RoomName)
	}
	if loc.Age < 0 || loc.Age > 90*time.Second {
		t.Errorf("age = %v", loc.Age)
	}
	path, err := svc.PathTo("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if path.Meters != 60 {
		t.Errorf("path = %+v, want 60m", path)
	}
	if path.RoomNames[0] != "Lobby" || path.RoomNames[len(path.RoomNames)-1] != "Cafeteria" {
		t.Errorf("path rooms = %v", path.RoomNames)
	}
}

func TestLogoutStopsTracking(t *testing.T) {
	svc := newService(t, 3)
	if _, err := svc.AddStationaryUser("bob", "pw", "Library"); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Stop()
	svc.Run(90 * time.Second)
	if _, err := svc.Locate("alice", "bob"); err != nil {
		t.Fatalf("precondition: %v", err)
	}
	if err := svc.Logout("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Locate("alice", "bob"); err == nil {
		t.Error("located after logout")
	}
}

func TestWalkingUserIsTracked(t *testing.T) {
	svc := newService(t, 4)
	if _, err := svc.AddWalkingUser("bob", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Stop()
	located := false
	for i := 0; i < 30 && !located; i++ {
		svc.Run(10 * time.Second)
		if _, err := svc.Locate("alice", "bob"); err == nil {
			located = true
		}
	}
	if !located {
		t.Error("walking user never located in 300s")
	}
}

func TestCustomCycleConfig(t *testing.T) {
	svc, err := New(Config{
		Seed:          5,
		DiscoverySlot: time.Second,
		CyclePeriod:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.MustRegister("alice", "pw")
	svc.MustRegister("bob", "pw")
	if _, err := svc.AddStationaryUser("bob", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Stop()
	// A 1 s slot restarts on train A every cycle, so a train-B slave is
	// only caught once its scan frequency drifts into train A; allow a
	// couple of minutes of simulated time.
	svc.Run(180 * time.Second)
	if _, err := svc.Locate("alice", "bob"); err != nil {
		t.Errorf("not located under fast cycle: %v", err)
	}
}

func TestInvalidCycleConfig(t *testing.T) {
	if _, err := New(Config{DiscoverySlot: 10 * time.Second, CyclePeriod: time.Second}); err == nil {
		t.Error("invalid cycle accepted")
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	svc := newService(t, 6)
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate registration")
		}
	}()
	svc.MustRegister("alice", "pw")
}

func TestPaperPolicy(t *testing.T) {
	p := PaperPolicy()
	if p.DiscoverySlot != 3840*time.Millisecond {
		t.Errorf("slot = %v", p.DiscoverySlot)
	}
	if p.ExpectedCoverage != 0.95 {
		t.Errorf("coverage = %v", p.ExpectedCoverage)
	}
	if p.Load < 0.24 || p.Load > 0.26 {
		t.Errorf("load = %v", p.Load)
	}
	if p.Cycle < 15*time.Second || p.Cycle > 16*time.Second {
		t.Errorf("cycle = %v", p.Cycle)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		svc := newService(t, 42)
		if _, err := svc.AddStationaryUser("bob", "pw", "Lab 1"); err != nil {
			t.Fatal(err)
		}
		svc.Start()
		defer svc.Stop()
		svc.Run(90 * time.Second)
		loc, err := svc.Locate("alice", "bob")
		if err != nil {
			t.Fatal(err)
		}
		return loc.RoomName + loc.Age.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %q vs %q", a, b)
	}
}
