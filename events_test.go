package bips

import (
	"testing"
	"time"
)

// drainEvents collects everything currently buffered on the subscription.
func drainEvents(sub *Subscription) []Event {
	var out []Event
	for {
		select {
		case e, ok := <-sub.Events():
			if !ok {
				return out
			}
			out = append(out, e)
		default:
			return out
		}
	}
}

func TestSubscribeDeliversLifecycle(t *testing.T) {
	svc, err := New(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	sub := svc.Subscribe()
	defer sub.Close()
	svc.MustRegister("alice", "pw")
	svc.MustRegister("bob", "pw")

	dev, err := svc.AddStationaryUser("bob", "pw", "Library")
	if err != nil {
		t.Fatal(err)
	}
	events := drainEvents(sub)
	if len(events) != 1 || events[0].Type != EventLogin {
		t.Fatalf("after login: events = %+v, want one EventLogin", events)
	}
	if e := events[0]; e.User != "bob" || e.Device != dev || e.RoomName != "" {
		t.Errorf("login event = %+v", e)
	}

	svc.Start()
	defer svc.Stop()
	svc.Run(90 * time.Second)

	events = drainEvents(sub)
	var entered *Event
	for i := range events {
		if events[i].Type == EventUserEntered {
			entered = &events[i]
			break
		}
	}
	if entered == nil {
		t.Fatalf("no EventUserEntered after 90s of tracking: %+v", events)
	}
	if entered.User != "bob" || entered.RoomName != "Library" || entered.Device != dev {
		t.Errorf("entered event = %+v", entered)
	}
	if entered.At <= 0 || entered.At > 90*time.Second {
		t.Errorf("entered.At = %v, want a simulated timestamp in (0, 90s]", entered.At)
	}

	if err := svc.Logout("bob"); err != nil {
		t.Fatal(err)
	}
	events = drainEvents(sub)
	if len(events) == 0 || events[len(events)-1].Type != EventLogout {
		t.Fatalf("after logout: events = %+v, want trailing EventLogout", events)
	}
}

func TestEventTimestampsMonotonic(t *testing.T) {
	svc, err := New(WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	sub := svc.Subscribe()
	defer sub.Close()
	svc.MustRegister("w", "pw")
	if _, err := svc.AddWalkingUser("w", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Stop()
	svc.Run(5 * time.Minute)

	events := drainEvents(sub)
	if len(events) < 2 {
		t.Fatalf("want several events from 5 min of walking, got %+v", events)
	}
	last := time.Duration(-1)
	for _, e := range events {
		if e.At < last {
			t.Errorf("timestamps went backwards: %v after %v (%+v)", e.At, last, e)
		}
		last = e.At
	}
}

func TestSubscriptionCloseStopsDelivery(t *testing.T) {
	svc, err := New(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	sub := svc.Subscribe()
	svc.MustRegister("alice", "pw")
	sub.Close()
	sub.Close() // idempotent
	if _, err := svc.AddStationaryUser("alice", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.Events(); ok {
		t.Error("closed subscription still delivered an event")
	}
}

func TestSubscriptionOverflowDropsNotBlocks(t *testing.T) {
	svc, err := New(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sub := svc.Subscribe()
	defer sub.Close()
	svc.MustRegister("u", "pw")
	// Overfill the buffer with synthetic events; the simulation must not
	// block on a slow consumer.
	for i := 0; i < 3*subscriptionBuffer; i++ {
		svc.hub.publish(Event{Type: EventLogin, User: "u"})
	}
	if got := sub.Dropped(); got != 2*subscriptionBuffer {
		t.Errorf("dropped = %d, want %d", got, 2*subscriptionBuffer)
	}
	if got := len(drainEvents(sub)); got != subscriptionBuffer {
		t.Errorf("delivered = %d, want full buffer %d", got, subscriptionBuffer)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	svc, err := New(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := svc.Subscribe(), svc.Subscribe()
	defer a.Close()
	defer b.Close()
	svc.MustRegister("alice", "pw")
	if _, err := svc.AddStationaryUser("alice", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	ea, eb := drainEvents(a), drainEvents(b)
	if len(ea) != 1 || len(eb) != 1 || ea[0] != eb[0] {
		t.Errorf("fan-out diverged: %+v vs %+v", ea, eb)
	}
}
