package bips

import (
	"errors"
	"testing"
	"time"
)

func TestNewDefaults(t *testing.T) {
	svc, err := New()
	if err != nil {
		t.Fatal(err)
	}
	slot, period := svc.DutyCycle()
	pol := PaperPolicy()
	if slot != pol.DiscoverySlot || period != pol.Cycle {
		t.Errorf("default duty cycle = %v/%v, want paper policy %v/%v",
			slot, period, pol.DiscoverySlot, pol.Cycle)
	}
	if rooms := svc.Rooms(); len(rooms) != 10 {
		t.Errorf("default building rooms = %v", rooms)
	}
}

func TestWithDutyCycleOverride(t *testing.T) {
	svc, err := New(WithSeed(5), WithDutyCycle(time.Second, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	slot, period := svc.DutyCycle()
	if slot != time.Second || period != 5*time.Second {
		t.Errorf("duty cycle = %v/%v, want 1s/5s", slot, period)
	}
}

func TestWithPolicy(t *testing.T) {
	svc, err := New(WithPolicy(PaperPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	slot, period := svc.DutyCycle()
	if slot != PaperPolicy().DiscoverySlot || period != PaperPolicy().Cycle {
		t.Errorf("duty cycle = %v/%v", slot, period)
	}
}

func TestOptionOrdering(t *testing.T) {
	// Later options override earlier ones.
	svc, err := New(WithSeed(1), WithSeed(2),
		WithDutyCycle(time.Second, 10*time.Second),
		WithDutyCycle(2*time.Second, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	slot, period := svc.DutyCycle()
	if slot != 2*time.Second || period != 20*time.Second {
		t.Errorf("duty cycle = %v/%v, want the later 2s/20s", slot, period)
	}
}

func TestBadOptionsRejected(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"negative slot", WithDutyCycle(-time.Second, 5*time.Second)},
		{"zero period", WithDutyCycle(time.Second, 0)},
		{"nil plan", WithBuilding(nil)},
		{"zero radius", WithCoverageRadius(0)},
	}
	for _, tc := range cases {
		if _, err := New(tc.opt); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", tc.name, err)
		}
	}
	// Slot > period is rejected by the core cycle validator.
	if _, err := New(WithDutyCycle(10*time.Second, time.Second)); err == nil {
		t.Error("slot > period accepted")
	}
}

// TestConfigShimEquivalence proves the deprecated Config form configures
// the exact same deployment as the functional options.
func TestConfigShimEquivalence(t *testing.T) {
	run := func(svc *Service) string {
		svc.MustRegister("alice", "pw")
		svc.MustRegister("bob", "pw")
		if _, err := svc.AddStationaryUser("bob", "pw", "Lab 1"); err != nil {
			t.Fatal(err)
		}
		svc.Start()
		defer svc.Stop()
		svc.Run(90 * time.Second)
		loc, err := svc.Locate("alice", "bob")
		if err != nil {
			t.Fatal(err)
		}
		return loc.RoomName + loc.Age.String()
	}

	old, err := New(Config{Seed: 11, DiscoverySlot: time.Second, CyclePeriod: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := New(WithSeed(11), WithDutyCycle(time.Second, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := run(old), run(modern); a != b {
		t.Errorf("Config shim diverged from options: %q vs %q", a, b)
	}
}

func TestWithBuildingCustomRooms(t *testing.T) {
	svc, err := New(WithBuilding(CorridorPlan(4, 12)))
	if err != nil {
		t.Fatal(err)
	}
	rooms := svc.Rooms()
	want := []string{"Room 1", "Room 2", "Room 3", "Room 4"}
	if len(rooms) != len(want) {
		t.Fatalf("rooms = %v", rooms)
	}
	for i, r := range rooms {
		if r != want[i] {
			t.Errorf("rooms[%d] = %q, want %q", i, r, want[i])
		}
	}
	p, err := svc.PathBetween("Room 1", "Room 4")
	if err != nil {
		t.Fatal(err)
	}
	if p.Meters != 36 {
		t.Errorf("corridor end-to-end = %v m, want 36", p.Meters)
	}
}

func TestStorageOptionValidation(t *testing.T) {
	if _, err := New(WithHistoryLimit(-3)); err == nil {
		t.Error("WithHistoryLimit(-3) accepted")
	}
	if _, err := New(WithDataDir("")); err == nil {
		t.Error("WithDataDir(\"\") accepted")
	}
	// A valid data dir + history limit construct cleanly and close.
	svc, err := New(WithDataDir(t.TempDir()), WithHistoryLimit(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	// Closing a memory-backed service is a no-op.
	mem, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Errorf("memory Close: %v", err)
	}
}
