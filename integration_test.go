package bips

// Integration tests exercising the distributed deployment: the central
// server behind a real TCP listener, workstation cells in separate
// simulated processes pushing presence deltas over the wire protocol, and
// clients issuing the paper's queries — the full Figure 1 architecture.

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/device"
	"bips/internal/graph"
	"bips/internal/hci"
	"bips/internal/locdb"
	"bips/internal/radio"
	"bips/internal/registry"
	"bips/internal/server"
	"bips/internal/sim"
	"bips/internal/wire"
	"bips/internal/workstation"
)

// startServer brings up a central server on a loopback TCP port.
func startServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := reg.Register(registry.UserID(u), u, "pw",
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(reg, locdb.New(), bld)
	srv.Logf = t.Logf
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Logf("server close: %v", err)
		}
		<-done
	})
	return srv, l.Addr().String()
}

func dial(t *testing.T, addr string) *wire.Client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	client := wire.NewClient(wire.NewCodec(conn))
	t.Cleanup(func() {
		if err := client.Close(); err != nil {
			t.Logf("client close: %v", err)
		}
	})
	return client
}

// simCell simulates one workstation cell whose deltas travel over TCP.
type simCell struct {
	kernel *sim.Kernel
	ws     *workstation.Workstation
	ctrl   *hci.HCI
}

func newSimCell(t *testing.T, addr string, room graph.NodeID, seed int64, devices []baseband.BDAddr) *simCell {
	t.Helper()
	client := dial(t, addr)
	station := building.StationAddr(int(room))
	if err := client.Call(wire.MsgHello, wire.Hello{
		Station: station.String(), Room: room,
	}, nil); err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(seed)
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: station, Pos: radio.Point{}})
	ctrl := hci.New(k, hci.Config{Addr: station}, med)
	t.Cleanup(ctrl.Close)
	rep := workstation.ReporterFunc(func(p wire.Presence) error {
		return client.Call(wire.MsgPresence, p, nil)
	})
	ws, err := workstation.New(k, ctrl, workstation.Config{Room: room}, rep)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 99))
	for _, dev := range devices {
		m, err := device.New(k, med, device.Config{
			Addr:  dev,
			Start: radio.Point{X: rng.Float64() * 5, Y: rng.Float64() * 5},
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		ctrl.AttachDevice(m.Radio())
	}
	return &simCell{kernel: k, ws: ws, ctrl: ctrl}
}

func (c *simCell) run(d sim.Tick) {
	c.ws.Start()
	c.kernel.RunUntil(c.kernel.Now() + d)
	c.ws.Stop()
}

func TestDistributedTrackingOverTCP(t *testing.T) {
	_, addr := startServer(t)
	client := dial(t, addr)

	devAlice := baseband.BDAddr(0xC1)
	devBob := baseband.BDAddr(0xC2)
	for user, dev := range map[string]baseband.BDAddr{"alice": devAlice, "bob": devBob} {
		if err := client.Call(wire.MsgLogin, wire.Login{
			User: user, Password: "pw", Device: dev.String(),
		}, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Two cells in different rooms, each tracking one device; their
	// simulated kernels run independently (as real stations would).
	cellLobby := newSimCell(t, addr, 1, 11, []baseband.BDAddr{devAlice})
	cellLib := newSimCell(t, addr, 6, 12, []baseband.BDAddr{devBob})
	var wg sync.WaitGroup
	for _, c := range []*simCell{cellLobby, cellLib} {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.run(90 * sim.TicksPerSecond)
		}()
	}
	wg.Wait()

	var loc wire.LocateResult
	if err := client.Call(wire.MsgLocate, wire.Locate{
		Querier: "alice", Target: "bob",
	}, &loc); err != nil {
		t.Fatalf("locate bob: %v", err)
	}
	if loc.Room != 6 || loc.RoomName != "Library" {
		t.Errorf("bob located in %d (%s), want Library", loc.Room, loc.RoomName)
	}

	var path wire.PathResult
	if err := client.Call(wire.MsgPath, wire.PathQuery{
		Querier: "alice", Target: "bob",
	}, &path); err != nil {
		t.Fatalf("path to bob: %v", err)
	}
	if path.Names[0] != "Lobby" || path.Names[len(path.Names)-1] != "Library" {
		t.Errorf("path = %v", path.Names)
	}
	if path.TotalMeters != 12 {
		t.Errorf("distance = %v, want 12 (one stairwell hop)", path.TotalMeters)
	}
}

func TestDistributedHandoverAcrossCells(t *testing.T) {
	srv, addr := startServer(t)
	client := dial(t, addr)
	dev := baseband.BDAddr(0xC7)
	if err := client.Call(wire.MsgLogin, wire.Login{
		User: "carol", Password: "pw", Device: dev.String(),
	}, nil); err != nil {
		t.Fatal(err)
	}

	// The device is first tracked by room 1's cell, then "walks" to
	// room 2's cell: the DB must follow, and the stale absence from
	// room 1 must not clobber the new presence.
	cell1 := newSimCell(t, addr, 1, 21, []baseband.BDAddr{dev})
	cell1.run(60 * sim.TicksPerSecond)
	var loc wire.LocateResult
	if err := client.Call(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "carol"}, &loc); err != nil {
		t.Fatalf("locate after cell1: %v", err)
	}
	if loc.Room != 1 {
		t.Fatalf("room = %d, want 1", loc.Room)
	}

	cell2 := newSimCell(t, addr, 2, 22, []baseband.BDAddr{dev})
	cell2.run(60 * sim.TicksPerSecond)
	if err := client.Call(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "carol"}, &loc); err != nil {
		t.Fatalf("locate after cell2: %v", err)
	}
	if loc.Room != 2 {
		t.Errorf("room after handover = %d, want 2", loc.Room)
	}

	// Delta accounting on the server side.
	if st := srv.DB().Stats(); st.Updates < 2 {
		t.Errorf("server saw %d updates, want >= 2", st.Updates)
	}
}

func TestManyClientsConcurrently(t *testing.T) {
	_, addr := startServer(t)
	setup := dial(t, addr)
	dev := baseband.BDAddr(0xC9)
	if err := setup.Call(wire.MsgLogin, wire.Login{
		User: "bob", Password: "pw", Device: dev.String(),
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := setup.Call(wire.MsgPresence, wire.Presence{
		Device: dev.String(), Room: 5, At: 10, Present: true,
	}, nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, addr)
			for j := 0; j < 20; j++ {
				var loc wire.LocateResult
				if err := c.Call(wire.MsgLocate, wire.Locate{
					Querier: "alice", Target: "bob",
				}, &loc); err != nil {
					t.Errorf("locate: %v", err)
					return
				}
				if loc.Room != 5 {
					t.Errorf("room = %d", loc.Room)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestLossyRadioStillConverges(t *testing.T) {
	// Failure injection: 20% packet loss on the air interface. The
	// discovery machinery must still enroll the device, just slower.
	k := sim.NewKernel(31)
	med := radio.NewMedium()
	med.SetLoss(0.2, rand.New(rand.NewSource(5)))
	station := building.StationAddr(1)
	med.Place(radio.Station{Addr: station, Pos: radio.Point{}})
	ctrl := hci.New(k, hci.Config{Addr: station}, med)
	defer ctrl.Close()
	rep := workstation.ReporterFunc(func(wire.Presence) error { return nil })
	ws, err := workstation.New(k, ctrl, workstation.Config{Room: 1}, rep)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	m, err := device.New(k, med, device.Config{Addr: 0xD1, Start: radio.Point{X: 2}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AttachDevice(m.Radio())
	ws.Start()
	k.RunUntil(300 * sim.TicksPerSecond)
	ws.Stop()
	st := ws.Stats()
	if st.Enrollments == 0 {
		t.Errorf("device never enrolled under 20%% loss (stats %+v)", st)
	}
	// Random loss makes link supervision flap the connection; the
	// system must keep re-enrolling rather than losing the device for
	// good.
	if st.Departures > 0 && st.Enrollments < 2 {
		t.Errorf("no re-enrollment after loss-induced departure (stats %+v)", st)
	}
}

func ExampleService() {
	svc, err := New(Config{Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	svc.MustRegister("alice", "pw")
	svc.MustRegister("bob", "pw")
	if _, err := svc.AddStationaryUser("alice", "pw", "Lobby"); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := svc.AddStationaryUser("bob", "pw", "Cafeteria"); err != nil {
		fmt.Println(err)
		return
	}
	svc.Start()
	defer svc.Stop()
	svc.Run(90 * 1e9) // 90 simulated seconds
	path, err := svc.PathTo("alice", "bob")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.0f m\n", path.Meters)
	// Output: 60 m
}
