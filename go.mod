module bips

go 1.22
