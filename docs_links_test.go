package bips_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) markdown links. Image links and inline
// code are close enough in shape that targets are filtered afterwards.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks is the link checker CI runs over README.md and docs/:
// every relative link in the project documentation must point at a file
// that exists in the repository. External links (http/https) and pure
// anchors are not checked.
func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	if len(files) < 4 {
		t.Fatalf("expected README + at least 3 docs, found %v", files)
	}

	checked := 0
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip a section anchor from relative links.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%s)", file, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("link checker found no relative links at all — regexp broken?")
	}
}

// TestDocsCrossReferences: the three core docs must cross-link each
// other and README must reach all of them, so a reader can navigate the
// doc set from any entry point.
func TestDocsCrossReferences(t *testing.T) {
	wantLinks := map[string][]string{
		"README.md":            {"docs/PROTOCOL.md", "docs/OPERATIONS.md", "docs/ARCHITECTURE.md"},
		"docs/PROTOCOL.md":     {"ARCHITECTURE.md", "OPERATIONS.md"},
		"docs/OPERATIONS.md":   {"PROTOCOL.md", "ARCHITECTURE.md"},
		"docs/ARCHITECTURE.md": {"PROTOCOL.md", "OPERATIONS.md"},
	}
	for file, targets := range wantLinks {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range targets {
			if !strings.Contains(string(raw), "("+target) {
				t.Errorf("%s does not link to %s", file, target)
			}
		}
	}
}
