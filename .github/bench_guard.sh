#!/bin/sh
# bench_guard.sh — fail when a hot-path benchmark regresses between two
# benchmark records written by .github/bench.sh.
#
# Usage:
#   .github/bench_guard.sh NEW.json OLD.json [max-regression-pct]
#
# The guard extracts every "Benchmark...": {...} entry from both records
# (taking the "after" ns/op when the entry is a before/after pair) and
# compares the keys the two records share. Records are made on different
# days and hosts, so absolute ns/op drifts together with machine speed;
# the guard therefore measures each key's new/old ratio against the
# MEDIAN ratio across all shared keys — the run-to-run drift — and only
# fails a key that is both more than max-regression-pct (default 20)
# worse than that drift and more than max-regression-pct worse in
# absolute terms. A uniform slowdown (slower runner) passes; one
# benchmark falling behind the pack does not.
#
# Keys whose old-side cost is under 100 ns are compared informationally
# but never fail the guard: at double-digit nanoseconds the measurement
# is dominated by timer granularity and cache state, and a 50% swing is
# noise, not a regression.
#
# No shared keys is a configuration error, not a pass: a guard that
# compares nothing must not go green.
set -eu

usage="usage: bench_guard.sh NEW.json OLD.json [max-regression-pct]"
new="${1:?$usage}"
old="${2:?$usage}"
pct="${3:-20}"

# One "Benchmark...": {...} entry per line in bench.sh records; emit
# "name ns_per_op", preferring the "after" side of a before/after pair.
extract() {
    awk -F'"' '/"[^"]*Benchmark/ {
        name = $2
        if (match($0, /"after": \{"ns_per_op": [0-9][0-9.e+]*/)) {
            v = substr($0, RSTART, RLENGTH)
        } else if (match($0, /"ns_per_op": [0-9][0-9.e+]*/)) {
            v = substr($0, RSTART, RLENGTH)
        } else next
        sub(/.*: /, "", v)
        print name, v
    }' "$1"
}

tmpn="$(mktemp)"
tmpo="$(mktemp)"
trap 'rm -f "$tmpn" "$tmpo"' EXIT
extract "$new" > "$tmpn"
extract "$old" > "$tmpo"

awk -v pct="$pct" -v newf="$new" -v oldf="$old" '
NR == FNR { old[$1] = $2; next }
($1 in old) && old[$1] + 0 > 0 {
    n++
    name[n] = $1
    newv[n] = $2
    oldv[n] = old[$1]
    r[n] = $2 / old[$1]
}
END {
    if (n == 0) {
        print "bench_guard: no shared benchmark keys between " newf " and " oldf > "/dev/stderr"
        exit 1
    }
    for (i = 1; i <= n; i++) s[i] = r[i]
    for (i = 2; i <= n; i++) {
        v = s[i]
        for (j = i - 1; j >= 1 && s[j] > v; j--) s[j + 1] = s[j]
        s[j + 1] = v
    }
    med = (n % 2) ? s[(n + 1) / 2] : (s[n / 2] + s[n / 2 + 1]) / 2
    lim = 1 + pct / 100.0
    bad = 0
    for (i = 1; i <= n; i++) {
        if (r[i] > med * lim && r[i] > lim) {
            if (oldv[i] < 100) {
                printf "bench_guard: note: %s moved %.0f -> %.0f ns/op (+%.0f%%) but is under the 100 ns noise floor\n",
                    name[i], oldv[i], newv[i], (r[i] - 1) * 100 > "/dev/stderr"
                continue
            }
            printf "bench_guard: %s regressed: %.0f -> %.0f ns/op (+%.0f%% against a %+.0f%% run drift; limit %s%%)\n",
                name[i], oldv[i], newv[i], (r[i] - 1) * 100, (med - 1) * 100, pct > "/dev/stderr"
            bad = 1
        }
    }
    if (bad) exit 1
    printf "bench_guard: %d shared keys within %s%% of the %.2fx run drift (%s vs %s)\n",
        n, pct, med, newf, oldf
}' "$tmpo" "$tmpn"
