#!/bin/sh
# bench.sh — run the benchmark suite and write machine-readable
# benchmark records (benchmark name -> ns/op, bytes/op, allocs/op) so the
# performance trajectory of the repo is tracked in data, not prose.
#
# Usage:
#   .github/bench.sh [output.json] [ingest-output.json] [analytics-output.json] [hotpath-output.json] [fanout-output.json] [flush-output.json]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 0.5s; CI may use 1s,
#              quick smoke runs 1x)
#   BENCHPKGS  packages to benchmark (default: the storage, locdb,
#              server, loadgen, analytics packages and the repo root)
#
# The main record includes, when both sides of BenchmarkLocdbDelta were
# measured, the derived "locdb_delta_overhead_pct": the saturation
# overhead of the durable (history + WAL) store versus the in-memory
# store on the workstation delta hot path — the PR 4 acceptance metric
# (see docs/OPERATIONS.md for how to read it on single-core hosts).
#
# The second record (default BENCH_PR5.json) is the ingest-throughput
# benchmark derived from BenchmarkIngestDelta: single-envelope
# MsgPresence versus sessioned MsgPresenceBatch frames, in ns per delta
# and deltas/sec, plus "batched_speedup" — the PR 5 acceptance metric
# (bar: >= 5x on the same hardware).
#
# The third record (default BENCH_PR7.json) is the history-analytics
# acceptance record derived from BenchmarkContactTrace and
# BenchmarkSegmentCompression in internal/analytics: contact-trace
# query latency percentiles over a million-device-day sealed history
# (bar: p99 < 1000 ms on one core) and sealed-segment bytes per
# presence run versus the 29-byte WAL record (bar: ratio >= 3).
#
# The fourth record (default BENCH_PR8.json) is the zero-alloc serving
# hot-path record: before (the PR 4 baselines, hardcoded) and after
# ns/bytes/allocs per op for the gated hot-path benchmarks, plus
# "serve_conn_alloc_reduction" — BenchmarkServeConnPipelined allocs/op
# before over after, the PR 8 acceptance metric (bar: >= 5x) — and
# "snapshot_unchanged_bytes_per_op", which must be 0 now that All()
# serves a cached merged snapshot on a quiescent database. Every gated
# benchmark must have BOTH sides of its before/after pair (or be
# explicitly marked as new, with no earlier number in any record) —
# an incomplete pair fails the run instead of silently emitting one
# side.
#
# The fifth record (default BENCH_PR9.json) is the staged fan-out
# acceptance record (PR 9): per-event write-path cost with subscribers
# attached in the synchronous versus the staged delivery configuration
# (BenchmarkFanoutWritePath; "write_path_speedup" is the acceptance
# metric, bar: >= 3x), the tree-level publish cost across delivery
# modes and publish shapes (BenchmarkFanoutPublishBatch), and the
# mixed ingest=70,subscribe=30 loadgen throughput in both modes
# (BenchmarkMixedIngestSubscribe; "mixed_throughput_ratio" must favor
# staged). It also repeats the gated hot-path benchmarks so the
# regression guard (.github/bench_guard.sh) has shared keys with the
# previous record.
#
# The sixth record (default BENCH_PR10.json) is the flush-coalescing
# acceptance record (PR 10): the depth-16 pipelined serving cost before
# (the committed PR 9 figure, hardcoded) and after the syscall-lean
# writer ("pipelined_speedup", bar: >= 2x on the one-core CI container),
# the pipeline-depth sweep (BenchmarkServeConnPipelinedDepth/d*), the
# event-burst pusher cost with its writes/event coalescing metric
# (BenchmarkEventBurstFlush), and the mixed-workload amortization
# (BenchmarkMixedFlushCoalesce): "frames_per_flush" is how many frames
# the server sent per write(2) flush (acceptance bar: >= 4), which is
# also the "syscall_reduction" versus a flush-per-frame writer. The
# gated hot-path set rides along for the regression guard.
set -eu

out="${1:-BENCH_PR4.json}"
ingest_out="${2:-BENCH_PR5.json}"
analytics_out="${3:-BENCH_PR7.json}"
hot_out="${4:-BENCH_PR8.json}"
fanout_out="${5:-BENCH_PR9.json}"
flush_out="${6:-BENCH_PR10.json}"
benchtime="${BENCHTIME:-0.5s}"
pkgs="${BENCHPKGS:-./internal/storage ./internal/locdb ./internal/fanout ./internal/server ./internal/loadgen ./internal/analytics .}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# No pipe here: plain sh has no pipefail, and a benchmark that fails to
# build or run must fail this script (and CI), not vanish into tee.
# shellcheck disable=SC2086 # pkgs is a deliberate word list
if ! go test -run '^$' -bench . -benchmem -benchtime "$benchtime" $pkgs > "$tmp" 2>&1; then
    cat "$tmp" >&2
    echo "bench.sh: go test -bench failed" >&2
    exit 1
fi
cat "$tmp" >&2

awk -v benchtime="$benchtime" -v ingout="$ingest_out" -v anaout="$analytics_out" -v hotout="$hot_out" -v fanout="$fanout_out" -v flushout="$flush_out" '
BEGIN {
    n = 0
    "go version" | getline gover
    "date -u +%Y-%m-%dT%H:%M:%SZ" | getline now
    "uname -srm" | getline host
    printf "{\n"
    printf "  \"schema\": \"bips-bench-v1\",\n"
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"date\": \"%s\",\n", now
    printf "  \"host\": \"%s\",\n", host
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": {\n"
}
$1 == "pkg:" { pkg = $2; next }
/^Benchmark/ {
    name = $1
    # Strip the -GOMAXPROCS suffix go test appends on multi-core hosts.
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        # Custom b.ReportMetric pairs from the analytics benchmarks.
        if ($(i + 1) == "p50-ms") ctp50 = $i
        if ($(i + 1) == "p99-ms") ctp99 = $i
        if ($(i + 1) == "device-days") devdays = $i
        if ($(i + 1) == "bytes/run") bytesrun = $i
        if ($(i + 1) == "ratio") ratio = $i
        if ($(i + 1) == "sealed-runs") sealedruns = $i
        # Loadgen throughput from BenchmarkMixedIngestSubscribe.
        if ($(i + 1) == "req/s") reqs[name] = $i
        # Flush-coalescing metrics from the PR 10 benchmarks.
        if ($(i + 1) == "frames/flush") fpf[name] = $i
        if ($(i + 1) == "writes/event") wpe[name] = $i
    }
    if (ns == "") next
    key = pkg "/" name
    if (n > 0) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", key, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
    n++
    if (ns != "" && bytes != "" && allocs != "") {
        # Hot-path capture for the PR 8 record.
        hotns[name] = ns; hotbytes[name] = bytes; hotallocs[name] = allocs
    }
    if (name == "BenchmarkLocdbDelta/mem") memns = ns
    if (name == "BenchmarkLocdbDelta/durable") durns = ns
    if (name == "BenchmarkLocdbDelta/journal") jns = ns
    if (name == "BenchmarkIngestDelta/single")  singlens = ns
    if (name == "BenchmarkIngestDelta/batched") batchns = ns
}
END {
    printf "\n  }"
    if (memns != "" && durns != "") {
        # Saturation overhead: total CPU per delta with the async
        # group-commit work charged to the issuing core (worst case,
        # see docs/OPERATIONS.md 4.3 for single-core interpretation).
        printf ",\n  \"locdb_delta_overhead_pct\": %.1f", (durns - memns) * 100.0 / memns
    }
    if (memns != "" && jns != "") {
        # Foreground overhead: the in-shard-lock journal append alone —
        # the latency a delta caller actually blocks on. This is the
        # PR 4 acceptance metric (bar: <= 20).
        printf ",\n  \"locdb_delta_foreground_overhead_pct\": %.1f", jns * 100.0 / memns
    }
    printf "\n}\n"

    # Third record: the history-analytics acceptance metrics (same pass
    # over the bench output, written to its own file).
    if (ctp99 == "" || bytesrun == "") {
        # BENCHPKGS may deliberately exclude internal/analytics; record
        # the omission instead of failing the whole run.
        print "bench.sh: analytics benchmarks not in this run; " anaout " records the omission" > "/dev/stderr"
        printf "{\n  \"schema\": \"bips-analytics-bench-v1\",\n" > anaout
        printf "  \"skipped\": \"BenchmarkContactTrace/BenchmarkSegmentCompression not in this run (BENCHPKGS excludes internal/analytics?)\"\n}\n" > anaout
    } else {
        printf "{\n" > anaout
        printf "  \"schema\": \"bips-analytics-bench-v1\",\n" > anaout
        printf "  \"go\": \"%s\",\n", gover > anaout
        printf "  \"date\": \"%s\",\n", now > anaout
        printf "  \"host\": \"%s\",\n", host > anaout
        printf "  \"benchtime\": \"%s\",\n", benchtime > anaout
        # The PR 7 acceptance metrics: contact-trace latency over a
        # million-device-day sealed history (bar: p99 < 1000 ms on one
        # core) and sealed bytes per presence run vs the 29-byte WAL
        # record (bar: compression_ratio >= 3).
        printf "  \"contact_trace_p50_ms\": %s,\n", ctp50 > anaout
        printf "  \"contact_trace_p99_ms\": %s,\n", ctp99 > anaout
        printf "  \"device_days\": %.0f,\n", devdays > anaout
        printf "  \"bytes_per_run\": %s,\n", bytesrun > anaout
        printf "  \"compression_ratio\": %s,\n", ratio > anaout
        printf "  \"sealed_runs\": %.0f\n", sealedruns > anaout
        printf "}\n" > anaout
    }

    # Second record: the ingest write-path throughput (same pass over
    # the bench output, written to its own file).
    if (singlens == "" || batchns == "") {
        # BENCHPKGS may deliberately exclude internal/server; record the
        # omission instead of failing the whole run.
        print "bench.sh: BenchmarkIngestDelta not in this run; " ingout " records the omission" > "/dev/stderr"
        printf "{\n  \"schema\": \"bips-ingest-bench-v1\",\n" > ingout
        printf "  \"skipped\": \"BenchmarkIngestDelta not in this run (BENCHPKGS excludes internal/server?)\"\n}\n" > ingout
        exit 0
    }
    printf "{\n" > ingout
    printf "  \"schema\": \"bips-ingest-bench-v1\",\n" > ingout
    printf "  \"go\": \"%s\",\n", gover > ingout
    printf "  \"date\": \"%s\",\n", now > ingout
    printf "  \"host\": \"%s\",\n", host > ingout
    printf "  \"benchtime\": \"%s\",\n", benchtime > ingout
    printf "  \"single_ns_per_delta\": %s,\n", singlens > ingout
    printf "  \"batched_ns_per_delta\": %s,\n", batchns > ingout
    printf "  \"single_deltas_per_sec\": %.0f,\n", 1e9 / singlens > ingout
    printf "  \"batched_deltas_per_sec\": %.0f,\n", 1e9 / batchns > ingout
    # The PR 5 acceptance metric: sessioned batched ingest vs one
    # MsgPresence envelope per delta, same hardware (bar: >= 5).
    printf "  \"batched_speedup\": %.1f\n", singlens / batchns > ingout
    printf "}\n" > ingout

    # Fourth record: the zero-alloc serving hot path (PR 8). Before
    # values are the PR 4 baselines from BENCH_PR4.json at commit time;
    # after values come from this run.
    scname = "BenchmarkServeConnPipelined"
    if (!(scname in hotallocs)) {
        print "bench.sh: hot-path benchmarks not in this run; " hotout " records the omission" > "/dev/stderr"
        printf "{\n  \"schema\": \"bips-hotpath-bench-v1\",\n" > hotout
        printf "  \"skipped\": \"BenchmarkServeConnPipelined not in this run (BENCHPKGS excludes internal/server?)\"\n}\n" > hotout
        printf "{\n  \"schema\": \"bips-fanout-bench-v1\",\n" > fanout
        printf "  \"skipped\": \"fan-out benchmarks not in this run (BENCHPKGS excludes internal/server?)\"\n}\n" > fanout
        printf "{\n  \"schema\": \"bips-flush-bench-v1\",\n" > flushout
        printf "  \"skipped\": \"flush benchmarks not in this run (BENCHPKGS excludes internal/server?)\"\n}\n" > flushout
        exit 0
    }
    printf "{\n" > hotout
    printf "  \"schema\": \"bips-hotpath-bench-v1\",\n" > hotout
    printf "  \"go\": \"%s\",\n", gover > hotout
    printf "  \"date\": \"%s\",\n", now > hotout
    printf "  \"host\": \"%s\",\n", host > hotout
    printf "  \"benchtime\": \"%s\",\n", benchtime > hotout
    # PR 4 baselines (before the pooled-buffer refactor), plus the
    # pre-PR-8 fan-out number from BENCH_PR4.json — every gated
    # benchmark needs a before, or an explicit "new in this record"
    # marker; anything else is an incomplete pair and fails the run.
    before["BenchmarkDispatchLocate"]      = "1285 336 9"
    before["BenchmarkServeConnPipelined"]  = "18075 2072 46"
    before["BenchmarkApplyBatch/batched"]  = "177 166 0"
    before["BenchmarkIngestDelta/batched"] = "3549 852 8"
    before["BenchmarkFanoutEventPush"]     = "2139 240 7"
    before["BenchmarkLocdbSnapshotAll"]    = "124275 76390 9"
    # Benchmarks introduced by the PR 8 work itself: no earlier number
    # exists in any record, so after-only is the complete pair.
    newbench["BenchmarkLocdbAllSince"] = 1
    ngate = split("BenchmarkDispatchLocate BenchmarkServeConnPipelined BenchmarkApplyBatch/batched BenchmarkIngestDelta/batched BenchmarkFanoutEventPush BenchmarkLocdbSnapshotAll BenchmarkLocdbAllSince", gates, " ")
    printf "  \"benchmarks\": {\n" > hotout
    first = 1
    for (gi = 1; gi <= ngate; gi++) {
        g = gates[gi]
        if (!(g in hotallocs)) {
            print "bench.sh: gated hot-path benchmark " g " was not measured in this run" > "/dev/stderr"
            fail = 1
            continue
        }
        if (!(g in before) && !(g in newbench)) {
            print "bench.sh: no before baseline for gated benchmark " g " (add it to the before table, or mark it newbench with a comment saying why no earlier number exists)" > "/dev/stderr"
            fail = 1
        }
        if (!first) printf ",\n" > hotout
        first = 0
        printf "    \"%s\": {", g > hotout
        if (g in before) {
            split(before[g], bv, " ")
            printf "\"before\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}, ", bv[1], bv[2], bv[3] > hotout
        }
        printf "\"after\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}}", hotns[g], hotbytes[g], hotallocs[g] > hotout
    }
    printf "\n  },\n" > hotout
    # The PR 8 acceptance metric: ServeConnPipelined allocs/op before
    # over after (bar: >= 5x).
    if (hotallocs[scname] + 0 > 0)
        printf "  \"serve_conn_alloc_reduction\": %.1f,\n", 46.0 / hotallocs[scname] > hotout
    else
        printf "  \"serve_conn_alloc_reduction\": null,\n" > hotout
    # All() on a quiescent database must no longer rebuild O(devices)
    # bytes per call.
    printf "  \"snapshot_unchanged_bytes_per_op\": %s\n", hotbytes["BenchmarkLocdbSnapshotAll"] > hotout
    printf "}\n" > hotout

    # Fifth record: the staged fan-out acceptance (PR 9). Every
    # sync/staged mode pair must be complete — one side alone cannot
    # support the speedup claims, so a missing half fails the run.
    nfg = split("BenchmarkFanoutEventPush BenchmarkFanoutWritePath/sync BenchmarkFanoutWritePath/staged BenchmarkFanoutPublishBatch/sync/single BenchmarkFanoutPublishBatch/sync/batch64 BenchmarkFanoutPublishBatch/staged/single BenchmarkFanoutPublishBatch/staged/batch64 BenchmarkMixedIngestSubscribe/sync BenchmarkMixedIngestSubscribe/staged", fgates, " ")
    fpresent = 0
    for (fi = 1; fi <= nfg; fi++) if (fgates[fi] in hotns) fpresent++
    if (fpresent == 0) {
        print "bench.sh: fan-out benchmarks not in this run; " fanout " records the omission" > "/dev/stderr"
        printf "{\n  \"schema\": \"bips-fanout-bench-v1\",\n" > fanout
        printf "  \"skipped\": \"fan-out benchmarks not in this run (BENCHPKGS excludes internal/fanout, internal/server or internal/loadgen?)\"\n}\n" > fanout
    } else {
        for (fi = 1; fi <= nfg; fi++) {
            if (!(fgates[fi] in hotns)) {
                print "bench.sh: fan-out benchmark " fgates[fi] " was not measured — a sync/staged pair is incomplete" > "/dev/stderr"
                fail = 1
            }
        }
        printf "{\n" > fanout
        printf "  \"schema\": \"bips-fanout-bench-v1\",\n" > fanout
        printf "  \"go\": \"%s\",\n", gover > fanout
        printf "  \"date\": \"%s\",\n", now > fanout
        printf "  \"host\": \"%s\",\n", host > fanout
        printf "  \"benchtime\": \"%s\",\n", benchtime > fanout
        # The gated hot-path set rides along so bench_guard.sh has
        # shared keys against the previous (PR 8) record; then the
        # fan-out benchmarks themselves. FanoutEventPush keeps its
        # pre-PR-8 before pair; the mixed-load entries carry the
        # loadgen-reported throughput.
        nall = split("BenchmarkDispatchLocate BenchmarkServeConnPipelined BenchmarkApplyBatch/batched BenchmarkIngestDelta/batched BenchmarkLocdbSnapshotAll BenchmarkLocdbAllSince", allg, " ")
        for (fi = 1; fi <= nfg; fi++) allg[nall + fi] = fgates[fi]
        nall += nfg
        printf "  \"benchmarks\": {\n" > fanout
        ffirst = 1
        for (ai = 1; ai <= nall; ai++) {
            g = allg[ai]
            if (!(g in hotns)) continue
            if (!ffirst) printf ",\n" > fanout
            ffirst = 0
            printf "    \"%s\": {", g > fanout
            if (g in before) {
                split(before[g], bv, " ")
                printf "\"before\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}, ", bv[1], bv[2], bv[3] > fanout
            }
            if (g in reqs) {
                # Loadgen entries: ns/op is per completed request and
                # bytes/allocs cover a whole timed run — only the
                # meaningful numbers are recorded.
                printf "\"after\": {\"ns_per_op\": %s}, \"req_per_sec\": %s}", hotns[g], reqs[g] > fanout
            } else {
                printf "\"after\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}}", hotns[g], hotbytes[g], hotallocs[g] > fanout
            }
        }
        printf "\n  }" > fanout
        # The PR 9 acceptance metrics. write_path_speedup is what the
        # mutating goroutine stops paying per event with delivery staged
        # (bar: >= 3x); mixed_throughput_ratio is the end-to-end req/s
        # win on the ingest=70,subscribe=30 loadgen mix (bar: > 1).
        wpsync = hotns["BenchmarkFanoutWritePath/sync"]
        wpstaged = hotns["BenchmarkFanoutWritePath/staged"]
        if (wpsync != "" && wpstaged != "" && wpstaged + 0 > 0) {
            printf ",\n  \"write_path_sync_ns_per_event\": %s", wpsync > fanout
            printf ",\n  \"write_path_staged_ns_per_event\": %s", wpstaged > fanout
            printf ",\n  \"write_path_speedup\": %.1f", wpsync / wpstaged > fanout
        }
        msync = reqs["BenchmarkMixedIngestSubscribe/sync"]
        mstaged = reqs["BenchmarkMixedIngestSubscribe/staged"]
        if (msync != "" && mstaged != "" && msync + 0 > 0) {
            printf ",\n  \"mixed_sync_req_per_sec\": %s", msync > fanout
            printf ",\n  \"mixed_staged_req_per_sec\": %s", mstaged > fanout
            printf ",\n  \"mixed_throughput_ratio\": %.2f", mstaged / msync > fanout
        }
        printf "\n}\n" > fanout
    }

    # Sixth record: the flush-coalescing acceptance (PR 10). The before
    # figure for the pipelined benchmark is the committed PR 9 record
    # (flush-per-frame writer) on the same CI container class; the depth
    # sweep, burst-flush and mixed-coalescing benchmarks are new in this
    # record, so after-only is the complete pair for them.
    scname = "BenchmarkServeConnPipelined"
    if (!(scname in hotns)) {
        print "bench.sh: flush benchmarks not in this run; " flushout " records the omission" > "/dev/stderr"
        printf "{\n  \"schema\": \"bips-flush-bench-v1\",\n" > flushout
        printf "  \"skipped\": \"BenchmarkServeConnPipelined not in this run (BENCHPKGS excludes internal/server?)\"\n}\n" > flushout
    } else {
        before10[scname] = "3950 112 9"
        nfl = split(scname " BenchmarkServeConnPipelinedDepth/d1 BenchmarkServeConnPipelinedDepth/d4 BenchmarkServeConnPipelinedDepth/d16 BenchmarkServeConnPipelinedDepth/d64 BenchmarkEventBurstFlush BenchmarkMixedFlushCoalesce", flg, " ")
        # The rest of the gated hot-path set rides along so the
        # regression guard has shared keys with the PR 9 record.
        nfall = split("BenchmarkDispatchLocate BenchmarkApplyBatch/batched BenchmarkIngestDelta/batched BenchmarkFanoutEventPush BenchmarkLocdbSnapshotAll BenchmarkLocdbAllSince", fla, " ")
        for (fi = 1; fi <= nfl; fi++) fla[nfall + fi] = flg[fi]
        nfall += nfl
        for (fi = 1; fi <= nfl; fi++) {
            if (!(flg[fi] in hotns)) {
                print "bench.sh: flush benchmark " flg[fi] " was not measured in this run" > "/dev/stderr"
                fail = 1
            }
        }
        printf "{\n" > flushout
        printf "  \"schema\": \"bips-flush-bench-v1\",\n" > flushout
        printf "  \"go\": \"%s\",\n", gover > flushout
        printf "  \"date\": \"%s\",\n", now > flushout
        printf "  \"host\": \"%s\",\n", host > flushout
        printf "  \"benchtime\": \"%s\",\n", benchtime > flushout
        printf "  \"benchmarks\": {\n" > flushout
        flfirst = 1
        for (fi = 1; fi <= nfall; fi++) {
            g = fla[fi]
            if (!(g in hotns)) continue
            if (!flfirst) printf ",\n" > flushout
            flfirst = 0
            printf "    \"%s\": {", g > flushout
            if (g in before10) {
                split(before10[g], bv, " ")
                printf "\"before\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}, ", bv[1], bv[2], bv[3] > flushout
            }
            if (g in fpf) {
                printf "\"after\": {\"ns_per_op\": %s}, \"frames_per_flush\": %s, \"req_per_sec\": %s}", hotns[g], fpf[g], reqs[g] > flushout
            } else if (g in wpe) {
                printf "\"after\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}, \"writes_per_event\": %s}", hotns[g], hotbytes[g], hotallocs[g], wpe[g] > flushout
            } else {
                printf "\"after\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}}", hotns[g], hotbytes[g], hotallocs[g] > flushout
            }
        }
        printf "\n  }" > flushout
        # The PR 10 acceptance metrics: pipelined depth-16 cost against
        # the committed flush-per-frame figure (bar: >= 2x) and the
        # frames-per-flush amortization under the pipelined mixed
        # workload (bar: >= 4), which is by construction the write(2)
        # reduction versus flush-per-frame.
        if (hotns[scname] + 0 > 0) {
            printf ",\n  \"pipelined_before_ns_per_op\": 3950" > flushout
            printf ",\n  \"pipelined_after_ns_per_op\": %s", hotns[scname] > flushout
            printf ",\n  \"pipelined_speedup\": %.2f", 3950.0 / hotns[scname] > flushout
        }
        if ("BenchmarkMixedFlushCoalesce" in fpf) {
            printf ",\n  \"frames_per_flush\": %s", fpf["BenchmarkMixedFlushCoalesce"] > flushout
            printf ",\n  \"syscall_reduction\": %s", fpf["BenchmarkMixedFlushCoalesce"] > flushout
        }
        if ("BenchmarkEventBurstFlush" in wpe)
            printf ",\n  \"event_burst_writes_per_event\": %s", wpe["BenchmarkEventBurstFlush"] > flushout
        printf "\n}\n" > flushout
    }

    if (fail) {
        print "bench.sh: incomplete benchmark records (see above)" > "/dev/stderr"
        exit 1
    }
}' "$tmp" > "$out"

echo "wrote $out" >&2
echo "wrote $ingest_out" >&2
echo "wrote $analytics_out" >&2
echo "wrote $hot_out" >&2
echo "wrote $fanout_out" >&2
echo "wrote $flush_out" >&2
