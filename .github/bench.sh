#!/bin/sh
# bench.sh — run the benchmark suite and write a machine-readable
# benchmark record (benchmark name -> ns/op, bytes/op, allocs/op) so the
# performance trajectory of the repo is tracked in data, not prose.
#
# Usage:
#   .github/bench.sh [output.json]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 0.5s; CI may use 1s,
#              quick smoke runs 1x)
#   BENCHPKGS  packages to benchmark (default: the storage, locdb,
#              server, loadgen packages and the repo root)
#
# The record includes, when both sides of BenchmarkLocdbDelta were
# measured, the derived "locdb_delta_overhead_pct": the saturation
# overhead of the durable (history + WAL) store versus the in-memory
# store on the workstation delta hot path — the PR 4 acceptance metric
# (see docs/OPERATIONS.md for how to read it on single-core hosts).
set -eu

out="${1:-BENCH_PR4.json}"
benchtime="${BENCHTIME:-0.5s}"
pkgs="${BENCHPKGS:-./internal/storage ./internal/locdb ./internal/server ./internal/loadgen .}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# No pipe here: plain sh has no pipefail, and a benchmark that fails to
# build or run must fail this script (and CI), not vanish into tee.
# shellcheck disable=SC2086 # pkgs is a deliberate word list
if ! go test -run '^$' -bench . -benchmem -benchtime "$benchtime" $pkgs > "$tmp" 2>&1; then
    cat "$tmp" >&2
    echo "bench.sh: go test -bench failed" >&2
    exit 1
fi
cat "$tmp" >&2

awk -v benchtime="$benchtime" '
BEGIN {
    n = 0
    "go version" | getline gover
    "date -u +%Y-%m-%dT%H:%M:%SZ" | getline now
    "uname -srm" | getline host
    printf "{\n"
    printf "  \"schema\": \"bips-bench-v1\",\n"
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"date\": \"%s\",\n", now
    printf "  \"host\": \"%s\",\n", host
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": {\n"
}
$1 == "pkg:" { pkg = $2; next }
/^Benchmark/ {
    name = $1
    # Strip the -GOMAXPROCS suffix go test appends on multi-core hosts.
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    key = pkg "/" name
    if (n > 0) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s", key, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
    n++
    if (name == "BenchmarkLocdbDelta/mem") memns = ns
    if (name == "BenchmarkLocdbDelta/durable") durns = ns
    if (name == "BenchmarkLocdbDelta/journal") jns = ns
}
END {
    printf "\n  }"
    if (memns != "" && durns != "") {
        # Saturation overhead: total CPU per delta with the async
        # group-commit work charged to the issuing core (worst case,
        # see docs/OPERATIONS.md 4.3 for single-core interpretation).
        printf ",\n  \"locdb_delta_overhead_pct\": %.1f", (durns - memns) * 100.0 / memns
    }
    if (memns != "" && jns != "") {
        # Foreground overhead: the in-shard-lock journal append alone —
        # the latency a delta caller actually blocks on. This is the
        # PR 4 acceptance metric (bar: <= 20).
        printf ",\n  \"locdb_delta_foreground_overhead_pct\": %.1f", jns * 100.0 / memns
    }
    printf "\n}\n"
}' "$tmp" > "$out"

echo "wrote $out" >&2
