package bips_test

import (
	"fmt"
	"time"

	"bips"
)

// ExampleService is the quickstart deployment: two registered users placed
// in rooms of the academic-department building, tracked by the cell
// workstations, then located and routed to each other. All randomness is
// derived from the seed option, so this output is reproducible.
func ExampleService() {
	svc, err := bips.New(bips.WithSeed(1))
	if err != nil {
		panic(err)
	}
	svc.MustRegister("alice", "secret")
	svc.MustRegister("bob", "secret")
	if _, err := svc.AddStationaryUser("alice", "secret", "Lobby"); err != nil {
		panic(err)
	}
	if _, err := svc.AddStationaryUser("bob", "secret", "Library"); err != nil {
		panic(err)
	}

	svc.Start()
	defer svc.Stop()
	svc.Run(90 * time.Second) // simulated time: enough for discovery

	loc, err := svc.Locate("alice", "bob")
	if err != nil {
		panic(err)
	}
	fmt.Println("bob is in the", loc.RoomName)

	path, err := svc.PathTo("alice", "bob")
	if err != nil {
		panic(err)
	}
	fmt.Printf("alice walks %.0f m via %v\n", path.Meters, path.RoomNames)
	// Output:
	// bob is in the Library
	// alice walks 12 m via [Lobby Library]
}

// ExampleFloorPlan deploys the service over a custom building: rooms and
// corridors assembled with the builder API, compiled at New, and queried
// through the precomputed navigation service.
func ExampleFloorPlan() {
	plan := bips.NewFloorPlan("gallery").
		AddRoom("Foyer", 0, 0).
		AddRoom("West Wing", 14, 0).
		AddRoom("East Wing", 0, 14).
		AddRoom("Vault", 14, 14).
		Connect("Foyer", "West Wing").
		Connect("Foyer", "East Wing").
		ConnectDistance("East Wing", "Vault", 20) // detour past the barrier

	svc, err := bips.New(bips.WithSeed(1), bips.WithBuilding(plan))
	if err != nil {
		panic(err)
	}
	fmt.Println("rooms:", svc.Rooms())

	path, err := svc.PathBetween("West Wing", "Vault")
	if err != nil {
		panic(err)
	}
	fmt.Printf("West Wing -> Vault: %.0f m via %v\n", path.Meters, path.RoomNames)
	// Output:
	// rooms: [Foyer West Wing East Wing Vault]
	// West Wing -> Vault: 48 m via [West Wing Foyer East Wing Vault]
}

// ExampleWithShards deploys the service with a sharded central location
// database: presence deltas and location queries for different devices
// take independent shard locks instead of contending on one mutex, which
// is what lets a campus-scale server saturate its cores. Sharding never
// changes query answers — only who waits on which lock.
func ExampleWithShards() {
	svc, err := bips.New(bips.WithSeed(1), bips.WithShards(32))
	if err != nil {
		panic(err)
	}
	svc.MustRegister("alice", "secret")
	svc.MustRegister("bob", "secret")
	if _, err := svc.AddStationaryUser("alice", "secret", "Lobby"); err != nil {
		panic(err)
	}
	if _, err := svc.AddStationaryUser("bob", "secret", "Library"); err != nil {
		panic(err)
	}
	svc.Start()
	defer svc.Stop()
	svc.Run(90 * time.Second)

	loc, err := svc.Locate("alice", "bob")
	if err != nil {
		panic(err)
	}
	fmt.Println("bob is in the", loc.RoomName, "(same answer on any shard count)")
	// Output:
	// bob is in the Library (same answer on any shard count)
}

// ExampleService_Subscribe consumes the typed event stream: logins and
// the presence deltas the workstations feed into the central location
// database, each stamped with its simulated time.
func ExampleService_Subscribe() {
	svc, err := bips.New(bips.WithSeed(1))
	if err != nil {
		panic(err)
	}
	sub := svc.Subscribe()
	defer sub.Close()

	svc.MustRegister("alice", "secret")
	if _, err := svc.AddStationaryUser("alice", "secret", "Seminar Room"); err != nil {
		panic(err)
	}
	svc.Start()
	defer svc.Stop()
	svc.Run(90 * time.Second)
	if err := svc.Logout("alice"); err != nil {
		panic(err)
	}

	for {
		select {
		case e := <-sub.Events():
			if e.RoomName != "" {
				fmt.Printf("%-12s %s in %s\n", e.Type, e.User, e.RoomName)
			} else {
				fmt.Printf("%-12s %s\n", e.Type, e.User)
			}
		default:
			return
		}
	}
	// Output:
	// login        alice
	// user-entered alice in Seminar Room
	// logout       alice
}
