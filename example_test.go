package bips_test

import (
	"fmt"
	"time"

	"bips"
)

// ExampleService is the quickstart deployment: two registered users placed
// in rooms of the academic-department building, tracked by the cell
// workstations, then located and routed to each other. All randomness is
// derived from Config.Seed, so this output is reproducible.
func ExampleService() {
	svc, err := bips.New(bips.Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	svc.MustRegister("alice", "secret")
	svc.MustRegister("bob", "secret")
	if _, err := svc.AddStationaryUser("alice", "secret", "Lobby"); err != nil {
		panic(err)
	}
	if _, err := svc.AddStationaryUser("bob", "secret", "Library"); err != nil {
		panic(err)
	}

	svc.Start()
	defer svc.Stop()
	svc.Run(90 * time.Second) // simulated time: enough for discovery

	loc, err := svc.Locate("alice", "bob")
	if err != nil {
		panic(err)
	}
	fmt.Println("bob is in the", loc.RoomName)

	path, err := svc.PathTo("alice", "bob")
	if err != nil {
		panic(err)
	}
	fmt.Printf("alice walks %.0f m via %v\n", path.Meters, path.RoomNames)
	// Output:
	// bob is in the Library
	// alice walks 12 m via [Lobby Library]
}
