package bips

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"bips/internal/building"
)

// TestAcademicPlanGolden pins the on-disk JSON format: the academic
// preset must serialize byte-for-byte to the committed golden file, so
// accidental format changes (field renames, indentation) are caught.
func TestAcademicPlanGolden(t *testing.T) {
	got, err := AcademicPlan().JSON()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "academic_plan.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("AcademicPlan JSON drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestFloorPlanJSONRoundTrip(t *testing.T) {
	orig := GridPlan(3, 2, 9).ConnectDistance("Room A1", "Room B3", 40)
	data, err := orig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseFloorPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip diverged:\norig %+v\nback %+v", orig, back)
	}

	// And through a file.
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFloorPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, loaded) {
		t.Errorf("file round trip diverged:\norig %+v\nback %+v", orig, loaded)
	}
}

// TestAcademicPlanCompilesToPreset proves the public plan and the
// internal preset describe the same building.
func TestAcademicPlanCompilesToPreset(t *testing.T) {
	fromPlan, err := AcademicPlan().Compile()
	if err != nil {
		t.Fatal(err)
	}
	preset, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromPlan.Rooms(), preset.Rooms()) {
		t.Errorf("rooms diverged:\nplan   %+v\npreset %+v", fromPlan.Rooms(), preset.Rooms())
	}
	for _, a := range preset.Rooms() {
		for _, b := range preset.Rooms() {
			dp, err1 := fromPlan.Distance(a.ID, b.ID)
			dq, err2 := preset.Distance(a.ID, b.ID)
			if (err1 == nil) != (err2 == nil) || dp != dq {
				t.Fatalf("distance %d-%d: plan %v/%v preset %v/%v", a.ID, b.ID, dp, err1, dq, err2)
			}
		}
	}
}

func TestFloorPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *FloorPlan
	}{
		{"empty", NewFloorPlan("x")},
		{"unnamed room", NewFloorPlan("x").AddRoom("", 0, 0)},
		{"duplicate room", NewFloorPlan("x").AddRoom("A", 0, 0).AddRoom("A", 1, 1)},
		{"unknown corridor end", NewFloorPlan("x").AddRoom("A", 0, 0).Connect("A", "B")},
		{"self loop", NewFloorPlan("x").AddRoom("A", 0, 0).Connect("A", "A")},
		{"negative distance", NewFloorPlan("x").AddRoom("A", 0, 0).AddRoom("B", 1, 0).ConnectDistance("A", "B", -1)},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); !errors.Is(err, ErrBadPlan) {
			t.Errorf("%s: err = %v, want ErrBadPlan", tc.name, err)
		}
		if _, err := tc.plan.Compile(); !errors.Is(err, ErrBadPlan) {
			t.Errorf("%s: Compile err = %v, want ErrBadPlan", tc.name, err)
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	g := GridPlan(3, 2, 9)
	if len(g.Rooms) != 6 {
		t.Errorf("grid rooms = %d, want 6", len(g.Rooms))
	}
	// Horizontal: (cols-1)*rows = 4, vertical: cols*(rows-1) = 3.
	if len(g.Corridors) != 7 {
		t.Errorf("grid corridors = %d, want 7", len(g.Corridors))
	}
	if g.Rooms[0].Name != "Room A1" || g.Rooms[5].Name != "Room B3" {
		t.Errorf("grid names = %q..%q", g.Rooms[0].Name, g.Rooms[5].Name)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}

	c := CorridorPlan(5, 7)
	if len(c.Rooms) != 5 || len(c.Corridors) != 4 {
		t.Errorf("corridor shape = %d rooms, %d corridors", len(c.Rooms), len(c.Corridors))
	}
	if c.Rooms[4].X != 28 {
		t.Errorf("corridor spacing: last room at x=%v, want 28", c.Rooms[4].X)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}

	// Degenerate inputs clamp instead of failing.
	if p := GridPlan(0, 0, -1); len(p.Rooms) != 1 {
		t.Errorf("clamped grid rooms = %d", len(p.Rooms))
	}
}

func TestRowLabel(t *testing.T) {
	for _, tc := range []struct {
		row  int
		want string
	}{{0, "A"}, {25, "Z"}, {26, "AA"}, {27, "AB"}, {52, "BA"}} {
		if got := rowLabel(tc.row); got != tc.want {
			t.Errorf("rowLabel(%d) = %q, want %q", tc.row, got, tc.want)
		}
	}
}

// TestCustomPlanEndToEnd is the acceptance scenario: a building defined
// entirely through the public FloorPlan API runs the full tracking
// pipeline and answers locate and navigation queries.
func TestCustomPlanEndToEnd(t *testing.T) {
	plan := NewFloorPlan("clinic").
		AddRoom("Reception", 0, 0).
		AddRoom("Ward A", 12, 0).
		AddRoom("Ward B", 24, 0).
		AddRoom("Pharmacy", 24, 12).
		Connect("Reception", "Ward A").
		Connect("Ward A", "Ward B").
		ConnectDistance("Ward B", "Pharmacy", 15)
	svc, err := New(WithSeed(3), WithBuilding(plan))
	if err != nil {
		t.Fatal(err)
	}
	svc.MustRegister("nurse", "pw")
	svc.MustRegister("patient", "pw")
	if _, err := svc.AddStationaryUser("nurse", "pw", "Reception"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddStationaryUser("patient", "pw", "Pharmacy"); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Stop()
	svc.Run(90 * time.Second)

	loc, err := svc.Locate("nurse", "patient")
	if err != nil {
		t.Fatal(err)
	}
	if loc.RoomName != "Pharmacy" {
		t.Errorf("patient located in %q", loc.RoomName)
	}
	path, err := svc.PathTo("nurse", "patient")
	if err != nil {
		t.Fatal(err)
	}
	if want := 12.0 + 12 + 15; path.Meters != want {
		t.Errorf("path = %+v, want %v m", path, want)
	}
	if path.RoomNames[0] != "Reception" || path.RoomNames[len(path.RoomNames)-1] != "Pharmacy" {
		t.Errorf("path rooms = %v", path.RoomNames)
	}
}
