package bips

import (
	"errors"
	"fmt"
	"time"

	"bips/internal/building"
	"bips/internal/inquiry"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// ErrBadOption reports an invalid option value passed to New.
var ErrBadOption = errors.New("bips: invalid option")

// Option configures a Service at construction time. Options are applied
// in order, so a later option overrides an earlier one. The deprecated
// Config struct also satisfies Option, which keeps pre-options callers of
// New compiling unchanged.
type Option interface {
	apply(*settings) error
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*settings) error

func (f optionFunc) apply(s *settings) error { return f(s) }

// settings is the resolved construction state an Option mutates.
type settings struct {
	seed    int64
	cycle   inquiry.DutyCycle
	bld     *building.Building
	radius  float64
	shards  int
	dataDir string
	// historyLimit uses the core convention: 0 = default, negative =
	// history disabled.
	historyLimit int
	// analyticsSeal uses the core convention: 0 = default period,
	// negative = background sealing disabled.
	analyticsSeal      time.Duration
	analyticsRetention time.Duration
}

// WithSeed sets the root random seed. All randomness (radio phases,
// backoffs, walkers) derives from it: identical seeds and identical call
// sequences replay identically. The default seed is 0.
func WithSeed(seed int64) Option {
	return optionFunc(func(s *settings) error {
		s.seed = seed
		return nil
	})
}

// WithDutyCycle overrides the workstation operational cycle: a discovery
// slot of slot per cycle of period. Both must be positive and slot must
// not exceed period. The default is the paper's 3.84 s / 15.4 s policy.
func WithDutyCycle(slot, period time.Duration) Option {
	return optionFunc(func(s *settings) error {
		if slot <= 0 || period <= 0 {
			return fmt.Errorf("%w: duty cycle %v/%v must be positive", ErrBadOption, slot, period)
		}
		s.cycle = inquiry.DutyCycle{
			Inquiry: sim.FromDuration(slot),
			Period:  sim.FromDuration(period),
		}
		return nil
	})
}

// WithPolicy schedules the workstations with the given derived policy
// (for example PaperPolicy, or a Policy built from other train-split
// assumptions). It is shorthand for WithDutyCycle(p.DiscoverySlot,
// p.Cycle).
func WithPolicy(p Policy) Option {
	return WithDutyCycle(p.DiscoverySlot, p.Cycle)
}

// WithBuilding deploys the service over the given floor plan instead of
// the built-in academic department. The plan is compiled (validated, the
// navigation graph built, all shortest paths precomputed) at New.
func WithBuilding(plan *FloorPlan) Option {
	return optionFunc(func(s *settings) error {
		if plan == nil {
			return fmt.Errorf("%w: nil floor plan", ErrBadOption)
		}
		bld, err := plan.Compile()
		if err != nil {
			return err
		}
		s.bld = bld
		return nil
	})
}

// WithShards splits the central location database into n independently
// locked shards keyed by device-address hash. More shards let presence
// deltas and location queries for different devices proceed in parallel
// instead of contending on one mutex; 1 reproduces the original
// single-mutex database. The default is locdb.DefaultShards (16). n must
// be in [1, 4096].
func WithShards(n int) Option {
	return optionFunc(func(s *settings) error {
		if n < 1 || n > locdb.MaxShards {
			return fmt.Errorf("%w: shard count %d (want 1..%d)", ErrBadOption, n, locdb.MaxShards)
		}
		s.shards = n
		return nil
	})
}

// WithDataDir backs the deployment's location database with the durable
// storage engine rooted at dir (created if missing): every presence
// delta is written through to an append-only WAL with periodic
// snapshots, and a later deployment constructed over the same directory
// recovers the full presence state and movement history. Close the
// service (Service.Close) for a clean final checkpoint. The empty
// default keeps the database purely in memory.
func WithDataDir(dir string) Option {
	return optionFunc(func(s *settings) error {
		if dir == "" {
			return fmt.Errorf("%w: empty data directory", ErrBadOption)
		}
		s.dataDir = dir
		return nil
	})
}

// WithHistoryLimit bounds the per-device movement history backing the
// LocateAt and Trajectory queries to the newest n presence runs.
// n = 0 disables history entirely (the historical queries then answer
// nothing); the default is locdb.DefaultHistoryLimit (128). n must not
// be negative.
func WithHistoryLimit(n int) Option {
	return optionFunc(func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("%w: negative history limit %d", ErrBadOption, n)
		}
		if n == 0 {
			s.historyLimit = -1
		} else {
			s.historyLimit = n
		}
		return nil
	})
}

// WithAnalyticsRetention bounds the analytics history (the data behind
// Contacts, Occupancy, DwellInRoom and DwellOf) to the most recent d of
// simulated time: sealed segments whose newest presence run ended more
// than d before the newest observed movement are deleted at the next
// compaction. d must be positive. The default keeps everything for the
// life of the deployment (and, with WithDataDir, across restarts).
func WithAnalyticsRetention(d time.Duration) Option {
	return optionFunc(func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("%w: analytics retention %v must be positive", ErrBadOption, d)
		}
		s.analyticsRetention = d
		return nil
	})
}

// WithAnalyticsSealInterval sets how often (in wall-clock time) the
// analytics engine compacts closed presence runs into immutable
// compressed segments. Shorter intervals bound the uncompacted hot tier
// more tightly; longer ones cut fewer, larger segments. d must be
// positive; the default is analytics.DefaultSealInterval (30s).
func WithAnalyticsSealInterval(d time.Duration) Option {
	return optionFunc(func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("%w: analytics seal interval %v must be positive", ErrBadOption, d)
		}
		s.analyticsSeal = d
		return nil
	})
}

// WithCoverageRadius overrides the 10 m default workstation coverage
// radius (in meters).
func WithCoverageRadius(meters float64) Option {
	return optionFunc(func(s *settings) error {
		if meters <= 0 {
			return fmt.Errorf("%w: coverage radius %v must be positive", ErrBadOption, meters)
		}
		s.radius = meters
		return nil
	})
}

// Config is the pre-options configuration form.
//
// Deprecated: use the functional options WithSeed, WithDutyCycle,
// WithPolicy and WithBuilding instead. Config remains accepted by New —
// it satisfies Option — so existing callers keep compiling.
type Config struct {
	// Seed drives all randomness (radio phases, backoffs, walkers).
	Seed int64
	// DiscoverySlot and CyclePeriod override the workstation duty
	// cycle. Zero values select the paper's 3.84 s / 15.4 s policy.
	DiscoverySlot time.Duration
	CyclePeriod   time.Duration
}

// apply makes Config an Option: the deprecated shim maps the struct
// fields onto the equivalent functional options.
func (c Config) apply(s *settings) error {
	s.seed = c.Seed
	if c.DiscoverySlot != 0 || c.CyclePeriod != 0 {
		// Preserve the historical behavior exactly: the pair is passed
		// through unvalidated here and rejected by the core validator,
		// so callers relying on New's error keep getting it.
		s.cycle = inquiry.DutyCycle{
			Inquiry: sim.FromDuration(c.DiscoverySlot),
			Period:  sim.FromDuration(c.CyclePeriod),
		}
	}
	return nil
}
