package bips

import (
	"sync"
	"sync/atomic"
	"time"

	"bips/internal/fanout"
)

// EventType classifies a Service event.
type EventType string

// The event types a Subscription delivers.
const (
	// EventLogin: a user logged in and BIPS started tracking their
	// device. Room fields are empty — the user has not been seen yet.
	EventLogin EventType = "login"
	// EventLogout: a user logged out; tracking stopped.
	EventLogout EventType = "logout"
	// EventUserEntered: a workstation revealed the user's presence in a
	// room (a new presence delta in the location database).
	EventUserEntered EventType = "user-entered"
	// EventUserLeft: the user left a cell — their old cell reported them
	// gone, or a handover into a neighboring cell revealed the move (a
	// handover emits the EventUserLeft for the old room immediately
	// followed by the EventUserEntered for the new one).
	EventUserLeft EventType = "user-left"
)

// Event is one tracked change of the deployment's user state.
type Event struct {
	Type EventType
	// User is the BIPS userid.
	User string
	// Device is the user's handheld BD_ADDR.
	Device string
	// Room and RoomName identify the cell for EventUserEntered and
	// EventUserLeft; they are zero/empty for login and logout.
	Room     int
	RoomName string
	// At is the simulated time of the change, relative to Start.
	At time.Duration
}

// subscriptionBuffer is the per-subscription channel capacity. Presence
// deltas are rare by design (the paper's load-reduction argument), so a
// small buffer absorbs any realistic burst between reads.
const subscriptionBuffer = 128

// Subscription is a registered event consumer. Events are delivered to a
// buffered channel; if the subscriber falls behind and the buffer fills,
// new events are dropped (and counted) rather than blocking the
// simulation.
type Subscription struct {
	hub     *eventHub
	id      int
	ch      chan Event
	dropped atomic.Int64
	once    sync.Once
}

// Events returns the delivery channel. It is closed by Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many events were discarded because the buffer was
// full.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close cancels the subscription and closes the Events channel. It is
// idempotent.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.hub.remove(s.id)
		close(s.ch)
	})
}

// eventHub fans Service events out to the live subscriptions.
type eventHub struct {
	mu   sync.Mutex
	subs map[int]*Subscription
	next int
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[int]*Subscription)}
}

func (h *eventHub) subscribe() *Subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	sub := &Subscription{hub: h, id: h.next, ch: make(chan Event, subscriptionBuffer)}
	h.next++
	h.subs[sub.id] = sub
	return sub
}

func (h *eventHub) remove(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, id)
}

// publish delivers e to every subscription without blocking: the sends
// happen under the hub lock (so Close cannot race a send on a closed
// channel) and full buffers drop the event.
func (h *eventHub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, sub := range h.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
		}
	}
}

// Subscribe returns a subscription to the deployment's event stream:
// logins, logouts, and the presence deltas (EventUserEntered,
// EventUserLeft) flowing from the workstations into the location
// database. Events carry simulated timestamps and are emitted
// synchronously as the simulation produces them, so a Run call fills the
// buffer which the caller drains between (or concurrently with) runs.
// Close the subscription when done.
func (s *Service) Subscribe() *Subscription {
	return s.hub.subscribe()
}

// onNotification translates a fan-out notification into a public event.
// The Service rides the server's fan-out tree with a catch-all filter,
// so in-process subscribers observe the same enter/leave sequence, in
// the same order, as wire-level subscribers. It runs inside the fan-out
// delivery path, on whatever goroutine applied the presence delta.
func (s *Service) onNotification(e fanout.Event) {
	var typ EventType
	switch e.Kind {
	case fanout.Enter:
		typ = EventUserEntered
	case fanout.Leave:
		typ = EventUserLeft
	default:
		// A catch-all filter only ever sees enter/leave.
		return
	}
	// Only logged-in devices reach the database, so the lookup normally
	// succeeds; a logout racing the delta loses the binding, and the
	// notification is dropped with it.
	user, err := s.sys.Server.Registry().UserOf(e.Device)
	if err != nil {
		return
	}
	name := ""
	if r, ok := s.sys.Building.Room(e.Room); ok {
		name = r.Name
	}
	s.hub.publish(Event{
		Type:     typ,
		User:     string(user),
		Device:   e.Device.String(),
		Room:     int(e.Room),
		RoomName: name,
		At:       e.At.Duration(),
	})
}
