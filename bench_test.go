// Benchmarks regenerating every table and figure of the paper. One bench
// per artefact (see DESIGN.md's per-experiment index):
//
//	BenchmarkTable1DiscoveryTrial  — Table 1 (one inquiry trial per op)
//	BenchmarkTable1Full            — Table 1 (all 500 trials per op)
//	BenchmarkFig2Sweep             — Figure 2 (all populations per op)
//	BenchmarkFig2TenSlaves         — Figure 2 (one 10-slave run per op)
//	BenchmarkPolicyCycle           — Section 5 policy analysis
//	BenchmarkAblationCollision     — collision handling on/off
//	BenchmarkAblationScan          — slave scan parameter sweep
//	BenchmarkAblationDuty          — discovery-slot sweep
//
// Plus microbenchmarks of the substrates on the hot path (the event
// kernel, Dijkstra/all-pairs, the location database, and the wire codec).
package bips

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/experiments"
	"bips/internal/graph"
	"bips/internal/inquiry"
	"bips/internal/locdb"
	"bips/internal/runner"
	"bips/internal/sim"
	"bips/internal/wire"
)

// --- Paper artefacts -------------------------------------------------------

// BenchmarkTable1DiscoveryTrial regenerates one Table 1 inquiry trial per
// iteration: master dedicated to inquiry, slave alternating inquiry scan
// and page scan.
func BenchmarkTable1DiscoveryTrial(b *testing.B) {
	rng := rand.New(rand.NewSource(2003))
	var total sim.Tick
	for i := 0; i < b.N; i++ {
		r := inquiry.RunTrial(rng, inquiry.TrialConfig{})
		total += r.Time
	}
	if b.N > 0 {
		b.ReportMetric(total.Seconds()/float64(b.N), "mean-discovery-s")
	}
}

// BenchmarkTable1Full regenerates the whole 500-trial table per iteration.
func BenchmarkTable1Full(b *testing.B) {
	var last experiments.Table1Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunTable1(int64(i)+2003, 500)
	}
	b.ReportMetric(last.Same.AvgSecs, "same-train-s")
	b.ReportMetric(last.Different.AvgSecs, "diff-train-s")
	b.ReportMetric(last.Mixed.AvgSecs, "mixed-s")
}

// BenchmarkTable1Workers regenerates the 500-trial Table 1 sweep on the
// experiment runner at increasing worker counts. workers=1 is the serial
// baseline; the engine's contract is near-linear speedup with identical
// output (>= 2x at 4 workers on a machine with >= 4 cores — the trials
// are CPU-bound, so a single-core host shows no gain by construction;
// BenchmarkRunnerWorkersLatencyBound isolates the engine's own scaling
// from the core count).
func BenchmarkTable1Workers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := runner.NewPool(runner.WithWorkers(workers))
			var last experiments.Table1Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = experiments.RunTable1On(context.Background(), pool, 2003, 500)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Mixed.AvgSecs, "mixed-s")
		})
	}
}

// BenchmarkRunnerWorkersLatencyBound measures the pool's trial overlap
// with a fixed 1 ms blocking trial, the shape of future sharded/remote
// execution. Unlike the CPU-bound Table 1 sweep this scales with the
// worker count even on a single core: 4 workers complete the sweep ~4x
// faster than serial, proving the dispatcher/sequencer adds no
// serialisation of its own.
func BenchmarkRunnerWorkersLatencyBound(b *testing.B) {
	const trials = 64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := runner.NewPool(runner.WithWorkers(workers))
			for i := 0; i < b.N; i++ {
				err := runner.Run(context.Background(), pool, 1, trials,
					func(t int, rng *rand.Rand) (int64, error) {
						time.Sleep(time.Millisecond)
						return rng.Int63(), nil
					},
					func(t int, v int64) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2TenSlaves regenerates one 10-slave Figure 2 run per
// iteration (1 s inquiry / 5 s cycle, train A only, collisions on).
func BenchmarkFig2TenSlaves(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	var at1s float64
	for i := 0; i < b.N; i++ {
		res, err := inquiry.RunSwarm(rng, inquiry.SwarmConfig{
			Slaves: 10,
			Cycle:  inquiry.DutyCycle{Inquiry: sim.TicksPerSecond, Period: 5 * sim.TicksPerSecond},
		})
		if err != nil {
			b.Fatal(err)
		}
		at1s += res.DiscoveredBy(sim.TicksPerSecond)
	}
	if b.N > 0 {
		b.ReportMetric(at1s/float64(b.N), "P(1s)")
	}
}

// BenchmarkFig2Sweep regenerates the full figure (all seven populations,
// reduced run count) per iteration.
func BenchmarkFig2Sweep(b *testing.B) {
	var p1s float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(int64(i)+42, experiments.Fig2Config{Runs: 10})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Curves {
			if c.Slaves == 10 {
				p1s = c.At1s
			}
		}
	}
	b.ReportMetric(p1s, "P10(1s)")
}

// BenchmarkPolicyCycle regenerates the Section 5 analysis per iteration.
func BenchmarkPolicyCycle(b *testing.B) {
	var coverage float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPolicy(int64(i)+7, 10)
		if err != nil {
			b.Fatal(err)
		}
		coverage = res.MeasuredCoverage
	}
	b.ReportMetric(coverage, "coverage")
}

// BenchmarkAblationCollision reruns the collision on/off comparison.
func BenchmarkAblationCollision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCollisionAblation(int64(i)+1, []int{10, 20}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScan reruns the scan-parameter sweep.
func BenchmarkAblationScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunScanAblation(int64(i)+1, 60)
	}
}

// BenchmarkAblationDuty reruns the discovery-slot sweep.
func BenchmarkAblationDuty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDutyAblation(int64(i)+1, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate microbenchmarks ---------------------------------------------

// BenchmarkKernelSchedule measures the event kernel's schedule+run cost.
func BenchmarkKernelSchedule(b *testing.B) {
	k := sim.NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Schedule(1, func(*sim.Kernel) {})
		k.Step()
	}
}

// BenchmarkDijkstra measures one Dijkstra run over a 100-room building.
func BenchmarkDijkstra(b *testing.B) {
	g := graph.New()
	rng := rand.New(rand.NewSource(1))
	const n = 100
	for i := 1; i < n; i++ {
		if err := g.AddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), graph.Weight(1+rng.Float64()*9)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Dijkstra(graph.NodeID(i % n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllPairsPrecompute measures the off-line startup computation
// for a large building.
func BenchmarkAllPairsPrecompute(b *testing.B) {
	g := graph.New()
	rng := rand.New(rand.NewSource(1))
	const n = 60
	for i := 1; i < n; i++ {
		if err := g.AddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i), graph.Weight(1+rng.Float64()*9)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ComputeAllPairs(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathLookup measures an online navigation query against the
// precomputed table (the paper's "no impact on online activities" claim).
func BenchmarkPathLookup(b *testing.B) {
	bld, err := building.AcademicDepartment()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bld.ShortestPath(1, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocdbUpdate measures a presence delta against the central
// location database.
func BenchmarkLocdbUpdate(b *testing.B) {
	db := locdb.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev := baseband.BDAddr(0xB000 + uint64(i%512))
		db.SetPresence(dev, graph.NodeID(i%10+1), sim.Tick(i))
	}
}

// BenchmarkLocdbLocate measures the spatio-temporal query.
func BenchmarkLocdbLocate(b *testing.B) {
	db := locdb.New()
	for i := 0; i < 512; i++ {
		db.SetPresence(baseband.BDAddr(0xB000+uint64(i)), graph.NodeID(i%10+1), sim.Tick(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Locate(baseband.BDAddr(0xB000 + uint64(i%512))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRoundTrip measures one request/response over the LAN
// protocol (in-memory pipe).
func BenchmarkWireRoundTrip(b *testing.B) {
	a, peer := net.Pipe()
	go func() {
		codec := wire.NewCodec(peer)
		for {
			env, err := codec.Recv()
			if err != nil {
				return
			}
			if err := codec.Send(wire.Envelope{Type: wire.MsgOK, Seq: env.Seq}); err != nil {
				return
			}
		}
	}()
	client := wire.NewClient(wire.NewCodec(a))
	defer client.Close()
	p := wire.Presence{Device: "AA:BB:CC:DD:EE:FF", Room: 3, Present: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.At = sim.Tick(i)
		if err := client.Call(wire.MsgPresence, p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSystemSecond measures one second of simulated time of the
// complete 10-cell deployment with five walking users.
func BenchmarkFullSystemSecond(b *testing.B) {
	svc, err := New(Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		user := fmt.Sprintf("u%d", i)
		svc.MustRegister(user, "pw")
		if _, err := svc.AddWalkingUser(user, "pw", "Lobby"); err != nil {
			b.Fatal(err)
		}
	}
	svc.Start()
	defer svc.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.Run(time.Second)
	}
}
