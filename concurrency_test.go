package bips

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentQueriesDuringRun hammers the read API from 8 goroutines
// while Run steps the kernel — the locking contract of the redesign. Run
// under -race this is the API's data-race proof; under the plain runner
// it still exercises the reader/stepper interleaving. It also proves
// concurrent readers cannot perturb the simulation: the outcome must be
// identical to an undisturbed run with the same seed.
func TestConcurrentQueriesDuringRun(t *testing.T) {
	const seed = 9
	outcome := func(concurrent bool) string {
		svc, err := New(WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		svc.MustRegister("alice", "pw")
		svc.MustRegister("bob", "pw")
		if _, err := svc.AddWalkingUser("alice", "pw", "Lobby"); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.AddWalkingUser("bob", "pw", "Cafeteria"); err != nil {
			t.Fatal(err)
		}
		svc.Start()
		defer svc.Stop()

		stop := make(chan struct{})
		var wg sync.WaitGroup
		if concurrent {
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_, _ = svc.Locate("alice", "bob")
						_, _ = svc.PathTo("alice", "bob")
						_, _ = svc.PathBetween("Lobby", "Cafeteria")
						_ = svc.Snapshot()
						_ = svc.Rooms()
						_ = svc.Now()
					}
				}()
			}
		}

		svc.Run(2 * time.Minute)
		close(stop)
		wg.Wait()

		out := svc.Now().String()
		if loc, err := svc.Locate("alice", "bob"); err == nil {
			out += loc.RoomName + loc.Age.String()
		} else {
			out += "unlocated"
		}
		for _, u := range svc.Snapshot() {
			out += "|" + u.User + "@" + u.RoomName
		}
		return out
	}

	hammered := outcome(true)
	undisturbed := outcome(false)
	if hammered != undisturbed {
		t.Errorf("concurrent queries perturbed the simulation:\nwith    %q\nwithout %q", hammered, undisturbed)
	}
}

// TestConcurrentSubscribersDuringRun pairs the event surface with a
// stepping kernel: subscribers attach, drain and detach while Run
// advances.
func TestConcurrentSubscribersDuringRun(t *testing.T) {
	svc, err := New(WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	svc.MustRegister("w", "pw")
	if _, err := svc.AddWalkingUser("w", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub := svc.Subscribe()
				for j := 0; j < 8; j++ {
					select {
					case <-sub.Events():
					case <-stop:
						sub.Close()
						return
					default:
					}
				}
				sub.Close()
			}
		}()
	}
	svc.Run(90 * time.Second)
	close(stop)
	wg.Wait()
}
