// Package bips is the public API of the BIPS indoor Bluetooth-based
// positioning service, a reproduction of Anastasi et al., "Experimenting an
// Indoor Bluetooth-based Positioning Service" (ICDCS Workshops 2003).
//
// A Service is a simulated deployment of the paper's system: one Bluetooth
// workstation cell per significant room of a building, a central server
// with the user registry and location database, and mobile users walking
// between cells. The service tracks logged-in users room-by-room and
// answers the paper's headline query: the shortest path a user must walk
// to reach another user.
//
//	svc, err := bips.New(bips.Config{Seed: 1})
//	svc.MustRegister("alice", "secret")
//	svc.MustRegister("bob", "secret")
//	aliceDev, _ := svc.AddStationaryUser("alice", "secret", "Lobby")
//	bobDev, _ := svc.AddStationaryUser("bob", "secret", "Library")
//	svc.Start()
//	svc.Run(90 * time.Second) // simulated time
//	path, _ := svc.PathTo("alice", "bob")
//
// All randomness is seeded: identical Config and identical call sequences
// replay identically.
package bips

import (
	"errors"
	"fmt"
	"time"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/core"
	"bips/internal/device"
	"bips/internal/inquiry"
	"bips/internal/mobility"
	"bips/internal/radio"
	"bips/internal/registry"
	"bips/internal/sim"
)

// Config configures a Service.
type Config struct {
	// Seed drives all randomness (radio phases, backoffs, walkers).
	Seed int64
	// DiscoverySlot and CyclePeriod override the workstation duty
	// cycle. Zero values select the paper's 3.84 s / 15.4 s policy.
	DiscoverySlot time.Duration
	CyclePeriod   time.Duration
}

// Location is a user's tracked position.
type Location struct {
	Room     int
	RoomName string
	// Age is how long ago (in simulated time) the presence was
	// recorded relative to the query.
	Age time.Duration
}

// Path is a navigation answer.
type Path struct {
	RoomNames []string
	Meters    float64
}

// Service is a running BIPS deployment.
type Service struct {
	sys     *core.System
	nextDev uint64
}

// ErrUnknownRoom is returned when a room name does not exist in the
// deployment's building.
var ErrUnknownRoom = errors.New("bips: unknown room name")

// New creates a deployment over the built-in academic-department floor
// plan.
func New(cfg Config) (*Service, error) {
	sysCfg := core.SystemConfig{Seed: cfg.Seed}
	if cfg.DiscoverySlot != 0 || cfg.CyclePeriod != 0 {
		sysCfg.Cycle = inquiry.DutyCycle{
			Inquiry: sim.FromDuration(cfg.DiscoverySlot),
			Period:  sim.FromDuration(cfg.CyclePeriod),
		}
	}
	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		return nil, err
	}
	return &Service{sys: sys, nextDev: 0xB000_0000_0001}, nil
}

// Rooms returns the building's room names in id order.
func (s *Service) Rooms() []string {
	rooms := s.sys.Building.Rooms()
	out := make([]string, 0, len(rooms))
	for _, r := range rooms {
		out = append(out, r.Name)
	}
	return out
}

func (s *Service) roomByName(name string) (building.Room, error) {
	for _, r := range s.sys.Building.Rooms() {
		if r.Name == name {
			return r, nil
		}
	}
	return building.Room{}, fmt.Errorf("%w: %q", ErrUnknownRoom, name)
}

// Register registers a user with the default rights (locate + trackable).
func (s *Service) Register(user, password string) error {
	return s.sys.RegisterUser(registry.UserID(user), user, password,
		registry.RightLocate, registry.RightTrackable)
}

// MustRegister is Register for program setup; it panics on error.
func (s *Service) MustRegister(user, password string) {
	if err := s.Register(user, password); err != nil {
		panic(fmt.Sprintf("bips: register %s: %v", user, err))
	}
}

func (s *Service) newAddr() baseband.BDAddr {
	a := baseband.BDAddr(s.nextDev)
	s.nextDev++
	return a
}

// AddStationaryUser gives the user a handheld placed in the named room and
// logs it in. It returns the assigned device address.
func (s *Service) AddStationaryUser(user, password, room string) (string, error) {
	r, err := s.roomByName(room)
	if err != nil {
		return "", err
	}
	addr := s.newAddr()
	if _, err := s.sys.AddMobile(device.Config{Addr: addr, Start: r.Center}); err != nil {
		return "", err
	}
	if err := s.sys.Login(registry.UserID(user), password, addr); err != nil {
		return "", err
	}
	return addr.String(), nil
}

// AddWalkingUser gives the user a handheld that random-waypoint-walks the
// whole floor plan at walking speeds, starting in the named room, and logs
// it in. It returns the assigned device address.
func (s *Service) AddWalkingUser(user, password, startRoom string) (string, error) {
	r, err := s.roomByName(startRoom)
	if err != nil {
		return "", err
	}
	// Bounds covering all room centers with a small margin.
	bounds := mobility.Rect{MinX: -2, MinY: -2, MaxX: 50, MaxY: 14}
	w, err := mobility.NewWalker(mobility.WalkerConfig{
		Bounds: bounds,
		Start:  radio.Point{X: r.Center.X, Y: r.Center.Y},
	}, s.sys.Kernel.Rand())
	if err != nil {
		return "", err
	}
	addr := s.newAddr()
	if _, err := s.sys.AddMobile(device.Config{Addr: addr, Walker: w}); err != nil {
		return "", err
	}
	if err := s.sys.Login(registry.UserID(user), password, addr); err != nil {
		return "", err
	}
	return addr.String(), nil
}

// Logout stops tracking the user.
func (s *Service) Logout(user string) error {
	return s.sys.Logout(registry.UserID(user))
}

// Start begins tracking in every cell.
func (s *Service) Start() { s.sys.Start() }

// Stop halts tracking.
func (s *Service) Stop() { s.sys.Stop() }

// Run advances the simulation by d of simulated time.
func (s *Service) Run(d time.Duration) { s.sys.Run(sim.FromDuration(d)) }

// Now returns the current simulated time since start.
func (s *Service) Now() time.Duration { return s.sys.Now().Duration() }

// Locate answers "where is target" on behalf of querier.
func (s *Service) Locate(querier, target string) (Location, error) {
	res, err := s.sys.Locate(registry.UserID(querier), registry.UserID(target))
	if err != nil {
		return Location{}, err
	}
	return Location{
		Room:     int(res.Room),
		RoomName: res.RoomName,
		Age:      (s.sys.Now() - res.At).Duration(),
	}, nil
}

// PathTo answers the navigation query: the shortest path querier must walk
// to reach target, as a sequence of room names.
func (s *Service) PathTo(querier, target string) (Path, error) {
	res, err := s.sys.PathTo(registry.UserID(querier), registry.UserID(target))
	if err != nil {
		return Path{}, err
	}
	return Path{RoomNames: res.Names, Meters: res.TotalMeters}, nil
}

// Policy exposes the paper's Section 5 scheduling policy derivation.
type Policy struct {
	DiscoverySlot    time.Duration
	Cycle            time.Duration
	ExpectedCoverage float64
	Load             float64
}

// PaperPolicy returns the derived policy: a 3.84 s discovery slot per
// 15.4 s cycle, ~95% per-slot coverage, ~24% tracking load.
func PaperPolicy() Policy {
	p := core.PaperPolicy()
	return Policy{
		DiscoverySlot:    p.DiscoverySlot.Duration(),
		Cycle:            p.Cycle.Duration(),
		ExpectedCoverage: p.ExpectedCoverage,
		Load:             p.Load,
	}
}
