package bips_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"bips"
)

// analyticsDeployment builds a deployment with two stationary users
// sharing the Lobby (so contact tracing has a guaranteed co-presence)
// and runs it for d of simulated time.
func analyticsDeployment(t *testing.T, d time.Duration, opts ...bips.Option) *bips.Service {
	t.Helper()
	svc, err := bips.New(append([]bips.Option{bips.WithSeed(7)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	svc.MustRegister("alice", "pw")
	svc.MustRegister("carol", "pw")
	if _, err := svc.AddStationaryUser("alice", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddStationaryUser("carol", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	svc.Run(d)
	return svc
}

// TestAnalyticsEndToEnd: the public Contacts / Occupancy / DwellInRoom /
// DwellOf surface answers from tracked movement with names and
// durations, not internal ids and ticks.
func TestAnalyticsEndToEnd(t *testing.T) {
	svc := analyticsDeployment(t, 3*time.Minute)
	now := svc.Now()

	contacts, err := svc.Contacts("alice", "carol", 0, now, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(contacts) != 1 {
		t.Fatalf("contacts of carol = %+v, want exactly alice's device", contacts)
	}
	c := contacts[0]
	if c.User != "alice" {
		t.Fatalf("contact user = %q, want alice", c.User)
	}
	if len(c.Rooms) != 1 || c.Rooms[0] != "Lobby" {
		t.Fatalf("contact rooms = %v, want [Lobby]", c.Rooms)
	}
	if c.Overlap <= 0 || c.First >= c.Last || c.Last > now {
		t.Fatalf("contact bounds inconsistent: %+v (now %v)", c, now)
	}
	// A minimum-overlap bar above the whole window filters it out.
	none, err := svc.Contacts("alice", "carol", 0, now, now+time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("contacts above the overlap bar = %+v", none)
	}

	occ, err := svc.Occupancy("alice", []string{"Lobby"}, 0, now, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 6 {
		t.Fatalf("occupancy series has %d buckets, want 6: %+v", len(occ), occ)
	}
	last := occ[len(occ)-1]
	if last.Count != 2 {
		t.Fatalf("final Lobby occupancy = %d, want both stationary users: %+v", last.Count, occ)
	}
	if occ[0].At != 0 || occ[1].At != 30*time.Second {
		t.Fatalf("bucket starts wrong: %+v", occ)
	}

	dwell, err := svc.DwellInRoom("alice", "Lobby", 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if dwell.Samples != 2 {
		t.Fatalf("Lobby dwell samples = %d, want one run per stationary user", dwell.Samples)
	}
	if dwell.Min <= 0 || dwell.Min > dwell.P50 || dwell.P50 > dwell.Max || dwell.Mean <= 0 {
		t.Fatalf("dwell summary inconsistent: %+v", dwell)
	}

	solo, err := svc.DwellOf("alice", "carol", 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Samples != 1 {
		t.Fatalf("carol dwell samples = %d, want her single Lobby run", solo.Samples)
	}

	// Unknown room names fail up front, before any access check.
	if _, err := svc.Occupancy("alice", []string{"Atlantis"}, 0, now, time.Second); !errors.Is(err, bips.ErrUnknownRoom) {
		t.Fatalf("occupancy of unknown room: %v", err)
	}
	if _, err := svc.DwellInRoom("alice", "Atlantis", 0, now); !errors.Is(err, bips.ErrUnknownRoom) {
		t.Fatalf("dwell of unknown room: %v", err)
	}
}

// TestAnalyticsSurvivesRestart: a durable deployment closed cleanly and
// rebuilt over the same directory answers the analytics surface
// identically — the public-API face of segment recovery plus reseeding.
func TestAnalyticsSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc1 := analyticsDeployment(t, 3*time.Minute, bips.WithDataDir(dir))
	now1 := svc1.Now()

	wantC, err := svc1.Contacts("alice", "carol", 0, now1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantC) == 0 {
		t.Fatal("no contacts to carry across the restart")
	}
	wantO, err := svc1.Occupancy("alice", []string{"Lobby"}, 0, now1, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wantD, err := svc1.DwellInRoom("alice", "Lobby", 0, now1)
	if err != nil {
		t.Fatal(err)
	}
	svc1.Stop()
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, err := bips.New(bips.WithSeed(7), bips.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	svc2.MustRegister("alice", "pw")
	svc2.MustRegister("carol", "pw")
	if _, err := svc2.AddStationaryUser("alice", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.AddStationaryUser("carol", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}

	gotC, err := svc2.Contacts("alice", "carol", 0, now1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatalf("recovered contacts differ:\n got %+v\nwant %+v", gotC, wantC)
	}
	gotO, err := svc2.Occupancy("alice", []string{"Lobby"}, 0, now1, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotO, wantO) {
		t.Fatalf("recovered occupancy differs:\n got %+v\nwant %+v", gotO, wantO)
	}
	gotD, err := svc2.DwellInRoom("alice", "Lobby", 0, now1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotD, wantD) {
		t.Fatalf("recovered dwell differs:\n got %+v\nwant %+v", gotD, wantD)
	}
}

// TestAnalyticsOptionsValidated: the retention and seal-interval options
// reject non-positive values like every other option.
func TestAnalyticsOptionsValidated(t *testing.T) {
	for name, opt := range map[string]bips.Option{
		"zero retention":         bips.WithAnalyticsRetention(0),
		"negative retention":     bips.WithAnalyticsRetention(-time.Second),
		"zero seal interval":     bips.WithAnalyticsSealInterval(0),
		"negative seal interval": bips.WithAnalyticsSealInterval(-time.Second),
	} {
		if _, err := bips.New(opt); !errors.Is(err, bips.ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", name, err)
		}
	}

	// Valid analytics options build a working deployment even without
	// a data directory (segments then stay in memory).
	svc := analyticsDeployment(t, time.Minute,
		bips.WithAnalyticsRetention(24*time.Hour),
		bips.WithAnalyticsSealInterval(time.Minute))
	if _, err := svc.Contacts("alice", "carol", 0, svc.Now(), 0); err != nil {
		t.Fatal(err)
	}
}
