// Command bips-query is the mobile client of the BIPS service: it logs
// users in and out and asks the central server the paper's queries.
//
//	bips-query -server 127.0.0.1:7700 login alice secret AA:BB:CC:DD:EE:01
//	bips-query -server 127.0.0.1:7700 locate alice bob
//	bips-query -server 127.0.0.1:7700 path alice bob
//	bips-query -server 127.0.0.1:7700 rooms
//	bips-query -server 127.0.0.1:7700 logout alice
//	bips-query -server 127.0.0.1:7700 -stats
//
// -timeout (default 5s) bounds the whole exchange — dial, request and
// response — so an unreachable or wedged server fails fast instead of
// hanging. -stats fetches and prints the server's metrics snapshot (the
// MsgStats query of docs/PROTOCOL.md) after the subcommand, or on its own
// when no subcommand is given. -v1 forces the newline-JSON wire protocol
// v1; the default is v2 length-prefixed frames.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"bips/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bips-query:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: bips-query [-server addr] [-timeout d] [-v1] [-stats] {login user pw dev | logout user | locate querier target | path querier target | rooms}")
}

func run(args []string) error {
	fs := flag.NewFlagSet("bips-query", flag.ContinueOnError)
	serverAddr := fs.String("server", "127.0.0.1:7700", "central server address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial + exchange timeout (0 waits forever)")
	stats := fs.Bool("stats", false, "fetch and print the server's metrics snapshot")
	useV1 := fs.Bool("v1", false, "use wire protocol v1 (newline JSON) instead of v2 frames")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 && !*stats {
		return usage()
	}

	// The client is one-shot: a single budget covers dial, request and
	// response, so a server that accepts but never answers also fails
	// within -timeout.
	start := time.Now()
	conn, err := net.DialTimeout("tcp", *serverAddr, *timeout)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		if err := conn.SetDeadline(start.Add(*timeout)); err != nil {
			return err
		}
	}
	var client *wire.Client
	if *useV1 {
		client = wire.NewClient(wire.NewCodec(conn))
	} else {
		client = wire.NewClient(wire.NewFrameCodec(conn))
	}
	defer client.Close()

	if len(rest) == 0 {
		return printStats(client)
	}
	switch rest[0] {
	case "login":
		if len(rest) != 4 {
			return usage()
		}
		if err := client.Call(wire.MsgLogin, wire.Login{
			User: rest[1], Password: rest[2], Device: rest[3],
		}, nil); err != nil {
			return err
		}
		fmt.Printf("logged in %q on %s\n", rest[1], rest[3])
	case "logout":
		if len(rest) != 2 {
			return usage()
		}
		if err := client.Call(wire.MsgLogout, wire.Logout{User: rest[1]}, nil); err != nil {
			return err
		}
		fmt.Printf("logged out %q\n", rest[1])
	case "locate":
		if len(rest) != 3 {
			return usage()
		}
		var res wire.LocateResult
		if err := client.Call(wire.MsgLocate, wire.Locate{
			Querier: rest[1], Target: rest[2],
		}, &res); err != nil {
			return err
		}
		fmt.Printf("%s is in room %d (%s), seen at tick %d\n",
			rest[2], res.Room, res.RoomName, res.At)
	case "path":
		if len(rest) != 3 {
			return usage()
		}
		var res wire.PathResult
		if err := client.Call(wire.MsgPath, wire.PathQuery{
			Querier: rest[1], Target: rest[2],
		}, &res); err != nil {
			return err
		}
		fmt.Printf("shortest path to %s (%.0f m): %s\n",
			rest[2], res.TotalMeters, strings.Join(res.Names, " -> "))
	case "rooms":
		if len(rest) != 1 {
			return usage()
		}
		var res wire.RoomsResult
		if err := client.Call(wire.MsgRooms, wire.RoomsQuery{}, &res); err != nil {
			return err
		}
		fmt.Printf("%-4s %-20s %8s %8s\n", "id", "name", "x (m)", "y (m)")
		for _, r := range res.Rooms {
			fmt.Printf("%-4d %-20s %8.1f %8.1f\n", r.ID, r.Name, r.X, r.Y)
		}
	default:
		return usage()
	}
	if *stats {
		fmt.Println()
		return printStats(client)
	}
	return nil
}

// printStats fetches the server's metrics snapshot over the open
// connection and renders it.
func printStats(client *wire.Client) error {
	var res wire.StatsResult
	if err := client.Call(wire.MsgStats, wire.StatsQuery{}, &res); err != nil {
		return err
	}
	wire.PrintStats(os.Stdout, res)
	return nil
}
