// Command bips-query is the mobile client of the BIPS service: it logs
// users in and out and asks the central server the paper's queries,
// including the historical spatio-temporal ones.
//
//	bips-query -server 127.0.0.1:7700 login alice secret AA:BB:CC:DD:EE:01
//	bips-query -server 127.0.0.1:7700 locate alice bob
//	bips-query -server 127.0.0.1:7700 at alice bob 2m30s
//	bips-query -server 127.0.0.1:7700 trajectory alice bob 0 5m
//	bips-query -server 127.0.0.1:7700 path alice bob
//	bips-query -server 127.0.0.1:7700 rooms
//	bips-query -server 127.0.0.1:7700 logout alice
//	bips-query -server 127.0.0.1:7700 -stats
//
// Timestamps for at/trajectory are simulated time since the server's
// tracking started: either a Go duration ("2m30s", "150s") or a raw
// tick count (an integer; 3200 ticks = 1 s).
//
// -timeout (default 5s) bounds the whole exchange — dial, request and
// response — uniformly for every subcommand, so an unreachable or
// wedged server fails fast instead of hanging. -stats fetches and
// prints the server's metrics snapshot (the MsgStats query of
// docs/PROTOCOL.md) after the subcommand, or on its own when no
// subcommand is given. -v1 forces the newline-JSON wire protocol v1;
// the default is v2 length-prefixed frames.
//
// Exit status: 0 on success, 1 when the server answers an error or the
// exchange fails, 2 for a usage error. Scripts can rely on a non-zero
// exit for every failed query.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"bips/internal/sim"
	"bips/internal/wire"
)

// errUsage marks command-line misuse (exit status 2, not 1).
var errUsage = errors.New("usage: bips-query [-server addr] [-timeout d] [-v1] [-stats] " +
	"{login user pw dev | logout user | locate querier target | at querier target time | " +
	"trajectory querier target from to | path querier target | rooms}")

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bips-query:", err)
		if errors.Is(err, errUsage) || errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bips-query", flag.ContinueOnError)
	serverAddr := fs.String("server", "127.0.0.1:7700", "central server address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial + exchange timeout (0 waits forever)")
	stats := fs.Bool("stats", false, "fetch and print the server's metrics snapshot")
	useV1 := fs.Bool("v1", false, "use wire protocol v1 (newline JSON) instead of v2 frames")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w (%v)", errUsage, err)
	}
	rest := fs.Args()
	if len(rest) == 0 && !*stats {
		return errUsage
	}
	if len(rest) > 0 {
		// Validate shape (and time arguments) before touching the
		// network, so usage errors never depend on server reachability.
		if err := validate(rest); err != nil {
			return err
		}
	}

	// The client is one-shot: a single budget covers dial, every request
	// and every response, so a server that accepts but never answers
	// also fails within -timeout — uniformly for all subcommands,
	// including a trailing -stats fetch.
	start := time.Now()
	conn, err := net.DialTimeout("tcp", *serverAddr, *timeout)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		if err := conn.SetDeadline(start.Add(*timeout)); err != nil {
			return err
		}
	}
	var client *wire.Client
	if *useV1 {
		client = wire.NewClient(wire.NewCodec(conn))
	} else {
		client = wire.NewClient(wire.NewFrameCodec(conn))
	}
	defer client.Close()

	if len(rest) > 0 {
		if err := runCommand(client, rest); err != nil {
			return err
		}
	}
	if *stats {
		if len(rest) > 0 {
			fmt.Println()
		}
		return printStats(client)
	}
	return nil
}

// validate checks a subcommand's shape without executing it.
func validate(rest []string) error {
	want := map[string]int{
		"login": 4, "logout": 2, "locate": 3, "at": 4,
		"trajectory": 5, "path": 3, "rooms": 1,
	}
	n, ok := want[rest[0]]
	if !ok || len(rest) != n {
		return errUsage
	}
	switch rest[0] {
	case "at":
		_, err := parseTime(rest[3])
		return err
	case "trajectory":
		if _, err := parseTime(rest[3]); err != nil {
			return err
		}
		_, err := parseTime(rest[4])
		return err
	}
	return nil
}

// runCommand executes one subcommand. The caller has already run
// validate, so shape and time arguments are known-good here — arity is
// checked in exactly one place (validate's table). Every error returned
// makes the process exit non-zero.
func runCommand(client *wire.Client, rest []string) error {
	switch rest[0] {
	case "login":
		if err := client.Call(wire.MsgLogin, wire.Login{
			User: rest[1], Password: rest[2], Device: rest[3],
		}, nil); err != nil {
			return err
		}
		fmt.Printf("logged in %q on %s\n", rest[1], rest[3])
	case "logout":
		if err := client.Call(wire.MsgLogout, wire.Logout{User: rest[1]}, nil); err != nil {
			return err
		}
		fmt.Printf("logged out %q\n", rest[1])
	case "locate":
		var res wire.LocateResult
		if err := client.Call(wire.MsgLocate, wire.Locate{
			Querier: rest[1], Target: rest[2],
		}, &res); err != nil {
			return err
		}
		fmt.Printf("%s is in room %d (%s), seen at %s\n",
			rest[2], res.Room, res.RoomName, fmtTick(res.At))
	case "at":
		at, err := parseTime(rest[3])
		if err != nil {
			return err
		}
		var res wire.LocateResult
		if err := client.Call(wire.MsgLocateAt, wire.LocateAt{
			Querier: rest[1], Target: rest[2], At: at,
		}, &res); err != nil {
			return err
		}
		fmt.Printf("%s was in room %d (%s) at %s (entered %s)\n",
			rest[2], res.Room, res.RoomName, fmtTick(at), fmtTick(res.At))
	case "trajectory":
		from, err := parseTime(rest[3])
		if err != nil {
			return err
		}
		to, err := parseTime(rest[4])
		if err != nil {
			return err
		}
		var res wire.TrajectoryResult
		if err := client.Call(wire.MsgTrajectory, wire.TrajectoryQuery{
			Querier: rest[1], Target: rest[2], From: from, To: to,
		}, &res); err != nil {
			return err
		}
		if len(res.Steps) == 0 {
			fmt.Printf("no recorded movement for %s in [%s, %s]\n",
				rest[2], fmtTick(from), fmtTick(to))
			return nil
		}
		fmt.Printf("%s between %s and %s:\n", rest[2], fmtTick(from), fmtTick(to))
		for _, step := range res.Steps {
			fmt.Printf("  %-10s room %-3d %s\n", fmtTick(step.At), step.Room, step.RoomName)
		}
	case "path":
		var res wire.PathResult
		if err := client.Call(wire.MsgPath, wire.PathQuery{
			Querier: rest[1], Target: rest[2],
		}, &res); err != nil {
			return err
		}
		fmt.Printf("shortest path to %s (%.0f m): %s\n",
			rest[2], res.TotalMeters, strings.Join(res.Names, " -> "))
	case "rooms":
		var res wire.RoomsResult
		if err := client.Call(wire.MsgRooms, wire.RoomsQuery{}, &res); err != nil {
			return err
		}
		fmt.Printf("%-4s %-20s %8s %8s\n", "id", "name", "x (m)", "y (m)")
		for _, r := range res.Rooms {
			fmt.Printf("%-4d %-20s %8.1f %8.1f\n", r.ID, r.Name, r.X, r.Y)
		}
	default:
		return errUsage
	}
	return nil
}

// parseTime accepts a simulated timestamp as a Go duration ("2m30s") or
// a raw tick count ("480000").
func parseTime(s string) (sim.Tick, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return sim.Tick(n), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad time %q (want a duration like 2m30s or a tick count): %w", s, errUsage)
	}
	return sim.FromDuration(d), nil
}

// fmtTick renders a simulated tick as both a duration and the raw tick.
func fmtTick(t sim.Tick) string {
	return fmt.Sprintf("%v (tick %d)", t.Duration(), int64(t))
}

// printStats fetches the server's metrics snapshot over the open
// connection and renders it.
func printStats(client *wire.Client) error {
	var res wire.StatsResult
	if err := client.Call(wire.MsgStats, wire.StatsQuery{}, &res); err != nil {
		return err
	}
	wire.PrintStats(os.Stdout, res)
	return nil
}
