// Command bips-query is the mobile client of the BIPS service: it logs
// users in and out and asks the central server the paper's queries,
// including the historical spatio-temporal ones.
//
//	bips-query -server 127.0.0.1:7700 login alice secret AA:BB:CC:DD:EE:01
//	bips-query -server 127.0.0.1:7700 locate alice bob
//	bips-query -server 127.0.0.1:7700 at alice bob 2m30s
//	bips-query -server 127.0.0.1:7700 trajectory alice bob 0 5m
//	bips-query -server 127.0.0.1:7700 path alice bob
//	bips-query -server 127.0.0.1:7700 contacts alice bob 0 5m 30s
//	bips-query -server 127.0.0.1:7700 occupancy alice 4,5,6 0 5m 1m
//	bips-query -server 127.0.0.1:7700 dwell alice room 4 0 5m
//	bips-query -server 127.0.0.1:7700 dwell alice device bob 0 5m
//	bips-query -server 127.0.0.1:7700 rooms
//	bips-query -server 127.0.0.1:7700 logout alice
//	bips-query -server 127.0.0.1:7700 -stats
//	bips-query -server 127.0.0.1:7700 -timeout 0 subscribe alice room 4
//
// Timestamps for at/trajectory and the analytics windows are simulated
// time since the server's tracking started: either a Go duration
// ("2m30s", "150s") or a raw tick count (an integer; 3200 ticks = 1 s).
//
// The analytics subcommands ask the history engine (docs/PROTOCOL.md
// section 10): contacts lists who shared a room with the target over
// [from, to) — with an optional minimum total overlap — occupancy
// renders a distinct-device time series per bucket over a
// comma-separated room zone, and dwell summarizes how long visitors
// stayed (per room or per user).
//
// The subscribe subcommand registers a push subscription (docs/
// PROTOCOL.md section 9) and streams the matching events to stdout, one
// line each, until the timeout expires or the server closes:
//
//	subscribe <querier> all                        every presence change
//	subscribe <querier> device <target>            one user's moves
//	subscribe <querier> room <id>                  one room's enters/leaves
//	subscribe <querier> zone <target> <id,id,...>  geofence crossing
//	subscribe <querier> occupancy <id> <K>         occupancy crossing K
//
// -timeout (default 5s) bounds the whole exchange — dial, request and
// response — uniformly for every subcommand, so an unreachable or
// wedged server fails fast instead of hanging. For subscribe it bounds
// the streaming window instead, and -timeout 0 streams forever. -stats
// fetches and prints the server's metrics snapshot (the MsgStats query
// of docs/PROTOCOL.md) after the subcommand, or on its own when no
// subcommand is given. The snapshot includes the transport's flush
// coalescing counters — wire.flushes, wire.frames, wire.flush_bytes and
// the derived wire.frames_per_flush — which show how many response
// frames the server amortizes per write(2); see docs/OPERATIONS.md for
// reading them. -v1 forces the newline-JSON wire protocol v1; the
// default is v2 length-prefixed frames.
//
// Exit status: 0 on success, 1 when the server answers an error or the
// exchange fails, 2 for a usage error. Scripts can rely on a non-zero
// exit for every failed query.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"bips/internal/graph"
	"bips/internal/sim"
	"bips/internal/wire"
)

// errUsage marks command-line misuse (exit status 2, not 1).
var errUsage = errors.New("usage: bips-query [-server addr] [-timeout d] [-v1] [-stats] " +
	"{login user pw dev | logout user | locate querier target | at querier target time | " +
	"trajectory querier target from to | path querier target | rooms | " +
	"contacts querier target from to [minOverlap] | " +
	"occupancy querier id,id,... from to bucket | " +
	"dwell querier {room id | device target} from to | " +
	"subscribe querier {all | device target | room id | zone target id,id,... | occupancy id K}}")

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bips-query:", err)
		if errors.Is(err, errUsage) || errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bips-query", flag.ContinueOnError)
	serverAddr := fs.String("server", "127.0.0.1:7700", "central server address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial + exchange timeout (0 waits forever)")
	stats := fs.Bool("stats", false, "fetch and print the server's metrics snapshot")
	useV1 := fs.Bool("v1", false, "use wire protocol v1 (newline JSON) instead of v2 frames")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w (%v)", errUsage, err)
	}
	rest := fs.Args()
	if len(rest) == 0 && !*stats {
		return errUsage
	}
	if len(rest) > 0 {
		// Validate shape (and time arguments) before touching the
		// network, so usage errors never depend on server reachability.
		if err := validate(rest); err != nil {
			return err
		}
	}

	// The client is one-shot: a single budget covers dial, every request
	// and every response, so a server that accepts but never answers
	// also fails within -timeout — uniformly for all subcommands,
	// including a trailing -stats fetch.
	start := time.Now()
	conn, err := net.DialTimeout("tcp", *serverAddr, *timeout)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		if err := conn.SetDeadline(start.Add(*timeout)); err != nil {
			return err
		}
	}
	var client *wire.Client
	if *useV1 {
		client = wire.NewClient(wire.NewCodec(conn))
	} else {
		client = wire.NewClient(wire.NewFrameCodec(conn))
	}
	defer client.Close()

	if len(rest) > 0 {
		if err := runCommand(client, rest); err != nil {
			return err
		}
	}
	if *stats {
		if len(rest) > 0 {
			fmt.Println()
		}
		return printStats(client)
	}
	return nil
}

// validate checks a subcommand's shape without executing it.
func validate(rest []string) error {
	if rest[0] == "subscribe" {
		// Variable arity: the filter kind decides. Building the filter
		// exercises every argument parse.
		_, err := subscribeFilter(rest)
		return err
	}
	if rest[0] == "contacts" {
		// Variable arity: the minimum-overlap argument is optional.
		if len(rest) != 5 && len(rest) != 6 {
			return errUsage
		}
		return parseTimes(rest[3:]...)
	}
	want := map[string]int{
		"login": 4, "logout": 2, "locate": 3, "at": 4,
		"trajectory": 5, "path": 3, "rooms": 1,
		"occupancy": 6, "dwell": 6,
	}
	n, ok := want[rest[0]]
	if !ok || len(rest) != n {
		return errUsage
	}
	switch rest[0] {
	case "at":
		_, err := parseTime(rest[3])
		return err
	case "trajectory":
		return parseTimes(rest[3], rest[4])
	case "occupancy":
		if _, err := parseRoomList(rest[2]); err != nil {
			return err
		}
		return parseTimes(rest[3], rest[4], rest[5])
	case "dwell":
		switch rest[2] {
		case "room":
			if _, err := parseRoomID(rest[3]); err != nil {
				return err
			}
		case "device":
			// rest[3] is a userid; the server validates it.
		default:
			return errUsage
		}
		return parseTimes(rest[4], rest[5])
	}
	return nil
}

// parseTimes validates a sequence of timestamp arguments.
func parseTimes(args ...string) error {
	for _, a := range args {
		if _, err := parseTime(a); err != nil {
			return err
		}
	}
	return nil
}

// runCommand executes one subcommand. The caller has already run
// validate, so shape and time arguments are known-good here — arity is
// checked in exactly one place (validate's table). Every error returned
// makes the process exit non-zero.
func runCommand(client *wire.Client, rest []string) error {
	switch rest[0] {
	case "login":
		if err := client.Call(wire.MsgLogin, wire.Login{
			User: rest[1], Password: rest[2], Device: rest[3],
		}, nil); err != nil {
			return err
		}
		fmt.Printf("logged in %q on %s\n", rest[1], rest[3])
	case "logout":
		if err := client.Call(wire.MsgLogout, wire.Logout{User: rest[1]}, nil); err != nil {
			return err
		}
		fmt.Printf("logged out %q\n", rest[1])
	case "locate":
		var res wire.LocateResult
		if err := client.Call(wire.MsgLocate, wire.Locate{
			Querier: rest[1], Target: rest[2],
		}, &res); err != nil {
			return err
		}
		fmt.Printf("%s is in room %d (%s), seen at %s\n",
			rest[2], res.Room, res.RoomName, fmtTick(res.At))
	case "at":
		at, err := parseTime(rest[3])
		if err != nil {
			return err
		}
		var res wire.LocateResult
		if err := client.Call(wire.MsgLocateAt, wire.LocateAt{
			Querier: rest[1], Target: rest[2], At: at,
		}, &res); err != nil {
			return err
		}
		fmt.Printf("%s was in room %d (%s) at %s (entered %s)\n",
			rest[2], res.Room, res.RoomName, fmtTick(at), fmtTick(res.At))
	case "trajectory":
		from, err := parseTime(rest[3])
		if err != nil {
			return err
		}
		to, err := parseTime(rest[4])
		if err != nil {
			return err
		}
		var res wire.TrajectoryResult
		if err := client.Call(wire.MsgTrajectory, wire.TrajectoryQuery{
			Querier: rest[1], Target: rest[2], From: from, To: to,
		}, &res); err != nil {
			return err
		}
		if len(res.Steps) == 0 {
			fmt.Printf("no recorded movement for %s in [%s, %s]\n",
				rest[2], fmtTick(from), fmtTick(to))
			return nil
		}
		fmt.Printf("%s between %s and %s:\n", rest[2], fmtTick(from), fmtTick(to))
		for _, step := range res.Steps {
			fmt.Printf("  %-10s room %-3d %s\n", fmtTick(step.At), step.Room, step.RoomName)
		}
	case "path":
		var res wire.PathResult
		if err := client.Call(wire.MsgPath, wire.PathQuery{
			Querier: rest[1], Target: rest[2],
		}, &res); err != nil {
			return err
		}
		fmt.Printf("shortest path to %s (%.0f m): %s\n",
			rest[2], res.TotalMeters, strings.Join(res.Names, " -> "))
	case "rooms":
		var res wire.RoomsResult
		if err := client.Call(wire.MsgRooms, wire.RoomsQuery{}, &res); err != nil {
			return err
		}
		fmt.Printf("%-4s %-20s %8s %8s\n", "id", "name", "x (m)", "y (m)")
		for _, r := range res.Rooms {
			fmt.Printf("%-4d %-20s %8.1f %8.1f\n", r.ID, r.Name, r.X, r.Y)
		}
	case "contacts":
		from, _ := parseTime(rest[3])
		to, _ := parseTime(rest[4])
		var minOverlap sim.Tick
		if len(rest) == 6 {
			minOverlap, _ = parseTime(rest[5])
		}
		var res wire.ContactsResult
		if err := client.Call(wire.MsgContacts, wire.ContactsQuery{
			Querier: rest[1], Target: rest[2], From: from, To: to, MinOverlap: minOverlap,
		}, &res); err != nil {
			return err
		}
		if len(res.Contacts) == 0 {
			fmt.Printf("no contacts of %s in [%s, %s)\n", rest[2], fmtTick(from), fmtTick(to))
			return nil
		}
		fmt.Printf("%d contact(s) of %s in [%s, %s):\n", len(res.Contacts), rest[2], fmtTick(from), fmtTick(to))
		for _, c := range res.Contacts {
			who := c.User
			if who == "" {
				who = c.Device
			}
			rooms := make([]string, 0, len(c.Rooms))
			for _, id := range c.Rooms {
				rooms = append(rooms, strconv.FormatInt(int64(id), 10))
			}
			fmt.Printf("  %-10s overlap %-12v rooms %-10s from %s to %s\n",
				who, c.Overlap.Duration(), strings.Join(rooms, ","), fmtTick(c.First), fmtTick(c.Last))
		}
	case "occupancy":
		rooms, _ := parseRoomList(rest[2])
		from, _ := parseTime(rest[3])
		to, _ := parseTime(rest[4])
		bucket, _ := parseTime(rest[5])
		var res wire.OccupancyResult
		if err := client.Call(wire.MsgOccupancy, wire.OccupancyQuery{
			Querier: rest[1], Rooms: rooms, From: from, To: to, Bucket: bucket,
		}, &res); err != nil {
			return err
		}
		fmt.Printf("occupancy of rooms %s in [%s, %s), bucket %s:\n",
			rest[2], fmtTick(from), fmtTick(to), fmtTick(bucket))
		for _, p := range res.Buckets {
			fmt.Printf("  %-22s %d\n", fmtTick(p.At), p.Count)
		}
	case "dwell":
		from, _ := parseTime(rest[4])
		to, _ := parseTime(rest[5])
		req := wire.DwellQuery{Querier: rest[1], From: from, To: to}
		var what string
		if rest[2] == "room" {
			id, _ := parseRoomID(rest[3])
			req.Kind, req.Room = wire.DwellRoom, id
			what = "in room " + rest[3]
		} else {
			req.Kind, req.Target = wire.DwellDevice, rest[3]
			what = "of " + rest[3]
		}
		var res wire.DwellResult
		if err := client.Call(wire.MsgDwell, req, &res); err != nil {
			return err
		}
		if res.Samples == 0 {
			fmt.Printf("no dwell samples %s in [%s, %s)\n", what, fmtTick(from), fmtTick(to))
			return nil
		}
		fmt.Printf("dwell %s in [%s, %s): %d sample(s)\n", what, fmtTick(from), fmtTick(to), res.Samples)
		fmt.Printf("  mean %v  stddev %v\n", fmtMeanTick(res.Mean), fmtMeanTick(res.Stddev))
		fmt.Printf("  min %v  p50 %v  p90 %v  p99 %v  max %v\n",
			res.Min.Duration(), res.P50.Duration(), res.P90.Duration(), res.P99.Duration(), res.Max.Duration())
	case "subscribe":
		return runSubscribe(client, rest)
	default:
		return errUsage
	}
	return nil
}

// subscribeFilter parses a subscribe subcommand's arguments into the
// wire filter. It is also validate's arity check for the subcommand.
func subscribeFilter(rest []string) (wire.SubFilter, error) {
	if len(rest) < 3 {
		return wire.SubFilter{}, errUsage
	}
	roomID := parseRoomID
	switch rest[2] {
	case "all":
		if len(rest) != 3 {
			return wire.SubFilter{}, errUsage
		}
		return wire.SubFilter{Kind: wire.FilterAll}, nil
	case "device":
		if len(rest) != 4 {
			return wire.SubFilter{}, errUsage
		}
		return wire.SubFilter{Kind: wire.FilterDevice, Target: rest[3]}, nil
	case "room":
		if len(rest) != 4 {
			return wire.SubFilter{}, errUsage
		}
		id, err := roomID(rest[3])
		if err != nil {
			return wire.SubFilter{}, err
		}
		return wire.SubFilter{Kind: wire.FilterRoom, Room: id}, nil
	case "zone":
		if len(rest) != 5 {
			return wire.SubFilter{}, errUsage
		}
		var rooms []graph.NodeID
		for _, part := range strings.Split(rest[4], ",") {
			id, err := roomID(strings.TrimSpace(part))
			if err != nil {
				return wire.SubFilter{}, err
			}
			rooms = append(rooms, id)
		}
		return wire.SubFilter{Kind: wire.FilterZone, Target: rest[3], Rooms: rooms}, nil
	case "occupancy":
		if len(rest) != 5 {
			return wire.SubFilter{}, errUsage
		}
		id, err := roomID(rest[3])
		if err != nil {
			return wire.SubFilter{}, err
		}
		k, err := strconv.Atoi(rest[4])
		if err != nil || k < 1 {
			return wire.SubFilter{}, fmt.Errorf("bad occupancy threshold %q (want an integer >= 1): %w", rest[4], errUsage)
		}
		return wire.SubFilter{Kind: wire.FilterOccupancy, Room: id, Threshold: k}, nil
	default:
		return wire.SubFilter{}, errUsage
	}
}

// runSubscribe registers the subscription and streams matching events
// to stdout until the connection ends (deadline, server close, ^C). The
// deadline expiring is the subcommand's normal way to finish, not a
// failure.
func runSubscribe(client *wire.Client, rest []string) error {
	filter, err := subscribeFilter(rest)
	if err != nil {
		return err
	}
	// The handler must be installed before the subscribe call: events
	// may arrive the instant the server registers the filter.
	client.SetPushHandler(func(env wire.Envelope) {
		var e wire.Event
		if err := wire.UnmarshalBody(env, &e); err != nil {
			return
		}
		printEvent(e)
	})
	if err := client.Call(wire.MsgSubscribe, wire.Subscribe{
		ID: "cli", Querier: rest[1], Filter: filter,
	}, nil); err != nil {
		return err
	}
	fmt.Printf("subscribed (%s); streaming events...\n", filter.Kind)
	<-client.Done()
	if err := client.Err(); err != nil && !errors.Is(err, os.ErrDeadlineExceeded) && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// printEvent renders one pushed event as a line.
func printEvent(e wire.Event) {
	switch e.Kind {
	case wire.EventOccupancyRise, wire.EventOccupancyFall:
		fmt.Printf("%-14s room %-3d %-20s occupancy=%d at %s\n",
			e.Kind, e.Room, e.RoomName, e.Occupancy, fmtTick(e.At))
	default:
		who := e.User
		if who == "" {
			who = e.Device
		}
		fmt.Printf("%-14s %-10s room %-3d %-20s at %s\n",
			e.Kind, who, e.Room, e.RoomName, fmtTick(e.At))
	}
}

// parseRoomID parses a single numeric room id.
func parseRoomID(s string) (graph.NodeID, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad room id %q (want an integer): %w", s, errUsage)
	}
	return graph.NodeID(n), nil
}

// parseRoomList parses a comma-separated room-id list ("4,5,6").
func parseRoomList(s string) ([]graph.NodeID, error) {
	var rooms []graph.NodeID
	for _, part := range strings.Split(s, ",") {
		id, err := parseRoomID(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		rooms = append(rooms, id)
	}
	return rooms, nil
}

// fmtMeanTick renders a fractional tick count (a mean or a standard
// deviation) as a duration.
func fmtMeanTick(ticks float64) time.Duration {
	return time.Duration(ticks * float64(sim.TickDuration))
}

// parseTime accepts a simulated timestamp as a Go duration ("2m30s") or
// a raw tick count ("480000").
func parseTime(s string) (sim.Tick, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return sim.Tick(n), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad time %q (want a duration like 2m30s or a tick count): %w", s, errUsage)
	}
	return sim.FromDuration(d), nil
}

// fmtTick renders a simulated tick as both a duration and the raw tick.
func fmtTick(t sim.Tick) string {
	return fmt.Sprintf("%v (tick %d)", t.Duration(), int64(t))
}

// printStats fetches the server's metrics snapshot over the open
// connection and renders it.
func printStats(client *wire.Client) error {
	var res wire.StatsResult
	if err := client.Call(wire.MsgStats, wire.StatsQuery{}, &res); err != nil {
		return err
	}
	wire.PrintStats(os.Stdout, res)
	return nil
}
