package main

import (
	"errors"
	"net"
	"testing"

	"bips/internal/wire"
)

// startAnalyticsServer seeds the shared fixture with one co-presence:
// alice joins bob in room 5 at tick 2500 (bob holds it over
// [2000, 3000)), so contact tracing has something to answer.
func startAnalyticsServer(t *testing.T) string {
	t.Helper()
	addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	client := wire.NewClient(wire.NewFrameCodec(conn))
	defer client.Close()
	if err := client.Call(wire.MsgPresence, wire.Presence{
		Device: "B0:00:00:00:00:01", Room: 5, At: 2500, Present: true,
	}, nil); err != nil {
		t.Fatal(err)
	}
	return addr
}

// TestAnalyticsSubcommandsSucceed: contacts, occupancy and dwell exit
// cleanly against a live server, in both time syntaxes, with and
// without the optional overlap bar, over both protocol versions.
func TestAnalyticsSubcommandsSucceed(t *testing.T) {
	addr := startAnalyticsServer(t)
	cases := [][]string{
		{"-server", addr, "contacts", "alice", "bob", "0", "10000"},
		{"-server", addr, "contacts", "alice", "bob", "0", "10000", "100"},
		{"-server", addr, "contacts", "alice", "bob", "0s", "5s", "10ms"},
		{"-server", addr, "occupancy", "alice", "5", "0", "10000", "1000"},
		{"-server", addr, "occupancy", "alice", "2,5,3", "0s", "3s", "500ms"},
		{"-server", addr, "dwell", "alice", "room", "5", "0", "10000"},
		{"-server", addr, "dwell", "alice", "device", "bob", "0", "10000"},
		{"-server", addr, "-v1", "contacts", "alice", "bob", "0", "10000"},
		{"-server", addr, "-stats", "dwell", "alice", "room", "5", "0", "10000"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v, want success", args, err)
		}
	}
}

// TestAnalyticsUsageErrors: malformed analytics invocations are usage
// errors (exit 2) detected before any dial — the address here is
// unreachable.
func TestAnalyticsUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-server", "127.0.0.1:1", "contacts", "alice", "bob", "0"},
		{"-server", "127.0.0.1:1", "contacts", "alice", "bob", "0", "10", "20", "30"},
		{"-server", "127.0.0.1:1", "contacts", "alice", "bob", "0", "not-a-time"},
		{"-server", "127.0.0.1:1", "contacts", "alice", "bob", "0", "10", "bad"},
		{"-server", "127.0.0.1:1", "occupancy", "alice", "5", "0", "10000"},
		{"-server", "127.0.0.1:1", "occupancy", "alice", "5,x", "0", "10000", "1000"},
		{"-server", "127.0.0.1:1", "occupancy", "alice", "5", "0", "10000", "oops"},
		{"-server", "127.0.0.1:1", "dwell", "alice", "zone", "5", "0", "10000"},
		{"-server", "127.0.0.1:1", "dwell", "alice", "room", "x", "0", "10000"},
		{"-server", "127.0.0.1:1", "dwell", "alice", "room", "5", "0"},
		{"-server", "127.0.0.1:1", "dwell", "alice", "device", "bob", "0", "bad"},
	}
	for _, args := range cases {
		if err := run(args); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) = %v, want usage error", args, err)
		}
	}
}

// TestAnalyticsQueryErrors: well-formed invocations the server rejects
// (unknown users, unknown rooms, inverted windows) surface as served
// errors — exit 1, never 0 and never a usage error.
func TestAnalyticsQueryErrors(t *testing.T) {
	addr := startAnalyticsServer(t)
	cases := [][]string{
		{"-server", addr, "contacts", "alice", "nobody", "0", "10000"},
		{"-server", addr, "contacts", "alice", "bob", "10000", "0"}, // inverted window
		{"-server", addr, "occupancy", "alice", "999", "0", "10000", "1000"},
		{"-server", addr, "occupancy", "alice", "5", "0", "10000", "-1"}, // negative bucket
		{"-server", addr, "dwell", "alice", "room", "999", "0", "10000"},
		{"-server", addr, "dwell", "ghost", "device", "bob", "0", "10000"},
	}
	for _, args := range cases {
		err := run(args)
		if err == nil {
			t.Errorf("run(%v) succeeded, want query error", args)
			continue
		}
		if errors.Is(err, errUsage) {
			t.Errorf("run(%v) classed as usage error: %v", args, err)
		}
	}
}
