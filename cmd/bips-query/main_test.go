package main

import (
	"errors"
	"net"
	"testing"
	"time"

	"bips/internal/building"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
	"bips/internal/sim"
	"bips/internal/wire"
)

// startServer runs a real central server on a loopback port, seeded
// with two users and a short movement history for bob.
func startServer(t *testing.T) string {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, u := range []string{"alice", "bob"} {
		if err := reg.Register(registry.UserID(u), u, "pw",
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(reg, locdb.New(), bld)
	srv.Logf = t.Logf
	if err := srv.Login(wire.Login{User: "alice", Password: "pw", Device: "B0:00:00:00:00:01"}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Login(wire.Login{User: "bob", Password: "pw", Device: "B0:00:00:00:00:02"}); err != nil {
		t.Fatal(err)
	}
	if err := srv.ApplyPresence(wire.Presence{Device: "B0:00:00:00:00:01", Room: 1, At: 10, Present: true}); err != nil {
		t.Fatal(err)
	}
	for i, room := range []graph.NodeID{2, 5, 3} {
		if err := srv.ApplyPresence(wire.Presence{
			Device: "B0:00:00:00:00:02", Room: room, At: sim.Tick(1000 * (i + 1)), Present: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// TestSubcommandsSucceed: every query subcommand exits cleanly against
// a live server, with -timeout applied uniformly.
func TestSubcommandsSucceed(t *testing.T) {
	addr := startServer(t)
	cases := [][]string{
		{"-server", addr, "locate", "alice", "bob"},
		{"-server", addr, "at", "alice", "bob", "2000"},
		{"-server", addr, "at", "alice", "bob", "900ms"},
		{"-server", addr, "trajectory", "alice", "bob", "0", "10000"},
		{"-server", addr, "trajectory", "alice", "bob", "0s", "5s"},
		{"-server", addr, "path", "alice", "bob"},
		{"-server", addr, "rooms"},
		{"-server", addr, "-stats"},
		{"-server", addr, "-stats", "locate", "alice", "bob"},
		{"-server", addr, "-v1", "at", "alice", "bob", "2000"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v, want success", args, err)
		}
	}
}

// TestSubscribeStreams: every subscribe filter shape registers against
// a live server and streams until -timeout expires, which is a clean
// exit (the deadline is the CLI's streaming window, not a failure).
func TestSubscribeStreams(t *testing.T) {
	addr := startServer(t)
	cases := [][]string{
		{"-server", addr, "-timeout", "300ms", "subscribe", "alice", "all"},
		{"-server", addr, "-timeout", "300ms", "subscribe", "alice", "device", "bob"},
		{"-server", addr, "-timeout", "300ms", "subscribe", "alice", "room", "5"},
		{"-server", addr, "-timeout", "300ms", "subscribe", "alice", "zone", "bob", "2,5,3"},
		{"-server", addr, "-timeout", "300ms", "subscribe", "alice", "occupancy", "5", "2"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v, want clean timeout exit", args, err)
		}
	}
}

// TestSubscribeStreamsEvents: events arriving during the streaming
// window are consumed (and printed) rather than failing the stream.
func TestSubscribeStreamsEvents(t *testing.T) {
	addr := startServer(t)
	go func() {
		time.Sleep(150 * time.Millisecond)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		client := wire.NewClient(wire.NewFrameCodec(conn))
		defer client.Close()
		// Move bob into the watched room mid-stream.
		_ = client.Call(wire.MsgPresence, wire.Presence{
			Device: "B0:00:00:00:00:02", Room: 5, At: 5000, Present: true,
		}, nil)
	}()
	args := []string{"-server", addr, "-timeout", "500ms", "subscribe", "alice", "room", "5"}
	if err := run(args); err != nil {
		t.Errorf("run(%v) = %v, want clean exit after streaming an event", args, err)
	}
}

// TestSubscribeDeniedIsError: a rejected subscription must exit with
// the served error, not sit in the streaming loop.
func TestSubscribeDeniedIsError(t *testing.T) {
	addr := startServer(t)
	err := run([]string{"-server", addr, "-timeout", "2s", "subscribe", "ghost", "room", "5"})
	if err == nil {
		t.Fatal("subscribe with unknown querier succeeded")
	}
	if errors.Is(err, errUsage) {
		t.Fatalf("served rejection classed as usage error: %v", err)
	}
}

// TestSubscribeUsageErrors: malformed subscribe invocations are usage
// errors detected before any dial (the address is unreachable).
func TestSubscribeUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-server", "127.0.0.1:1", "subscribe"},
		{"-server", "127.0.0.1:1", "subscribe", "alice"},
		{"-server", "127.0.0.1:1", "subscribe", "alice", "all", "extra"},
		{"-server", "127.0.0.1:1", "subscribe", "alice", "device"},
		{"-server", "127.0.0.1:1", "subscribe", "alice", "room"},
		{"-server", "127.0.0.1:1", "subscribe", "alice", "room", "x"},
		{"-server", "127.0.0.1:1", "subscribe", "alice", "zone", "bob"},
		{"-server", "127.0.0.1:1", "subscribe", "alice", "zone", "bob", "1,x"},
		{"-server", "127.0.0.1:1", "subscribe", "alice", "occupancy", "5"},
		{"-server", "127.0.0.1:1", "subscribe", "alice", "occupancy", "5", "0"},
		{"-server", "127.0.0.1:1", "subscribe", "alice", "proximity", "bob"},
	}
	for _, args := range cases {
		if err := run(args); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) = %v, want usage error", args, err)
		}
	}
}

// TestQueryErrorsAreErrors: a served error answer must surface as a
// non-nil (non-usage) error so the process exits 1, never 0.
func TestQueryErrorsAreErrors(t *testing.T) {
	addr := startServer(t)
	cases := [][]string{
		{"-server", addr, "locate", "alice", "nobody"},
		{"-server", addr, "at", "alice", "bob", "5"}, // before history
		{"-server", addr, "login", "alice", "wrongpw", "B0:00:00:00:00:09"},
	}
	for _, args := range cases {
		err := run(args)
		if err == nil {
			t.Errorf("run(%v) succeeded, want query error", args)
			continue
		}
		if errors.Is(err, errUsage) {
			t.Errorf("run(%v) classed as usage error: %v", args, err)
		}
	}
}

// TestUsageErrors: malformed invocations are usage errors (exit 2) and
// never touch the network.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-server", "127.0.0.1:1", "locate", "alice"},
		{"-server", "127.0.0.1:1", "at", "alice", "bob"},
		{"-server", "127.0.0.1:1", "trajectory", "alice", "bob", "0"},
		{"-server", "127.0.0.1:1", "wat"},
	}
	for _, args := range cases {
		if err := run(args); !errors.Is(err, errUsage) {
			t.Errorf("run(%v) = %v, want usage error", args, err)
		}
	}
}

// TestUsageCheckedBeforeDial: bad time strings are usage errors, and
// they are detected before any connection is attempted (the server
// address here is unreachable).
func TestUsageCheckedBeforeDial(t *testing.T) {
	if err := run([]string{"-server", "127.0.0.1:1", "at", "alice", "bob", "not-a-time"}); !errors.Is(err, errUsage) {
		t.Errorf("bad time string not a usage error")
	}
	if err := run([]string{"-server", "127.0.0.1:1", "trajectory", "alice", "bob", "0", "xyz"}); !errors.Is(err, errUsage) {
		t.Errorf("bad trajectory time not a usage error")
	}
}

// TestTimeoutFailsFast: an unreachable server fails within the budget
// instead of hanging.
func TestTimeoutFailsFast(t *testing.T) {
	// A listener that accepts and never answers.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	err = run([]string{"-server", l.Addr().String(), "-timeout", "200ms", "locate", "alice", "bob"})
	if err == nil {
		t.Fatal("query against a mute server succeeded")
	}
	if errors.Is(err, errUsage) {
		t.Fatalf("timeout classed as usage error: %v", err)
	}
}
