// Command bips-loadgen drives a BIPS central server with K concurrent
// clients at a target request rate and reports throughput and latency
// percentiles. It is the measuring stick of the serving layer: every
// scaling change is judged by what this tool reports (see
// docs/OPERATIONS.md for the benchmark recipe).
//
//	bips-server -listen :7700 -loadgen-users 16 &
//	bips-loadgen -server 127.0.0.1:7700 -clients 8 -qps 50000 -duration 10s -mode mixed
//	bips-loadgen -server 127.0.0.1:7700 -mode locate -users 16 -batch 32
//	bips-loadgen -server 127.0.0.1:7700 -mix "locate=60,presence=20,at=10,trajectory=10"
//	bips-loadgen -server 127.0.0.1:7700 -mix ingest -ingest-batch 256
//
// With -qps 0 the generator runs unthrottled and reports the saturation
// throughput. -mode rooms needs no server-side setup; every other mode,
// and any -mix touching users, needs the server started with
// -loadgen-users >= -users. -mix overrides -mode with an explicit
// weighted request mix over rooms | locate | presence | at |
// trajectory | ingest | subscribe — the way to drive the storage
// engine's read/history serving workload and the sessioned batched
// write path (see docs/OPERATIONS.md). The ingest op streams
// MsgPresenceBatch frames of -ingest-batch deltas on per-worker
// sessions, so write throughput is measured with the same tool and
// protocol as reads; every delta counts as one request in the report.
// The subscribe op toggles per-worker room subscriptions, churning the
// fan-out registration path. -stats additionally fetches the server's
// MsgStats snapshot after the run; its wire.frames_per_flush counter
// reports how well the server coalesced response flushes under the
// generated load (pipelined mixes should push it well above 1).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"bips/internal/loadgen"
	"bips/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("bips-loadgen: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bips-loadgen", flag.ContinueOnError)
	var (
		serverAddr = fs.String("server", "127.0.0.1:7700", "central server address")
		clients    = fs.Int("clients", 4, "concurrent connections")
		pipeline   = fs.Int("pipeline", 8, "concurrent in-flight calls per connection")
		qps        = fs.Float64("qps", 0, "target aggregate requests/second (0 = unthrottled)")
		duration   = fs.Duration("duration", 5*time.Second, "run length")
		mode       = fs.String("mode", "rooms", "preset request mix: rooms | locate | mixed")
		mix        = fs.String("mix", "", `weighted request mix overriding -mode, e.g. "locate=6,presence=2,at=1,trajectory=1", "ingest" or "subscribe=1,presence=4"`)
		batch      = fs.Int("batch", 1, "sub-requests per MsgBatch envelope (1 = no batching; incompatible with the ingest op)")
		ingestN    = fs.Int("ingest-batch", 64, "deltas per MsgPresenceBatch frame for the ingest op")
		users      = fs.Int("users", 8, "synthetic users for locate/mixed (server needs -loadgen-users >= this)")
		password   = fs.String("password", "loadgen", "synthetic users' password")
		useV1      = fs.Bool("v1", false, "use wire protocol v1 (newline JSON) instead of v2 frames")
		seed       = fs.Int64("seed", 1, "request-mix random seed")
		stats      = fs.Bool("stats", false, "fetch and print the server's MsgStats after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := loadgen.Config{
		Addr:        *serverAddr,
		Clients:     *clients,
		Pipeline:    *pipeline,
		QPS:         *qps,
		Duration:    *duration,
		Mode:        loadgen.Mode(*mode),
		Mix:         *mix,
		Batch:       *batch,
		IngestBatch: *ingestN,
		Users:       *users,
		Password:    *password,
		V1:          *useV1,
		Seed:        *seed,
	}
	workload := "mode=" + *mode
	if *mix != "" {
		workload = "mix=" + *mix
	}
	log.Printf("driving %s: %d conns x %d pipeline, %s batch=%d qps=%v for %v",
		cfg.Addr, *clients, *pipeline, workload, *batch, *qps, *duration)
	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep)

	if *stats {
		if err := printStats(*serverAddr); err != nil {
			return fmt.Errorf("stats: %w", err)
		}
	}
	return nil
}

// printStats fetches and renders the server's metrics snapshot.
func printStats(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	client := wire.NewClient(wire.NewFrameCodec(conn))
	defer client.Close()
	var res wire.StatsResult
	if err := client.Call(wire.MsgStats, wire.StatsQuery{}, &res); err != nil {
		return err
	}
	fmt.Println("\nserver stats:")
	wire.PrintStats(os.Stdout, res)
	return nil
}
