package main

import (
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-run", "table1", "-trials", "60"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "Same", "Different", "Mixed", "Paper Taverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig2(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-run", "fig2", "-runs", "3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "P(1s)") {
		t.Errorf("output missing fig2 table:\n%s", sb.String())
	}
}

func TestRunFig2Series(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-run", "fig2", "-runs", "2", "-series"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 100 {
		t.Errorf("series output too short: %d lines", len(lines))
	}
}

func TestRunPolicy(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-run", "policy", "-runs", "4"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Discovery slot", "3.84s", "Tracking load"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunAblations(t *testing.T) {
	for _, name := range []string{"ablation-collision", "ablation-scan", "ablation-duty"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, []string{"-run", name, "-runs", "3", "-trials", "20"}); err != nil {
				t.Fatal(err)
			}
			if len(sb.String()) < 100 {
				t.Errorf("output too short:\n%s", sb.String())
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-run", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
