package main

import (
	"context"
	"io"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-run", "table1", "-trials", "60"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "Same", "Different", "Mixed", "Paper Taverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig2(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-run", "fig2", "-runs", "3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "P(1s)") {
		t.Errorf("output missing fig2 table:\n%s", sb.String())
	}
}

func TestRunFig2Series(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-run", "fig2", "-runs", "2", "-series"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 100 {
		t.Errorf("series output too short: %d lines", len(lines))
	}
}

func TestRunPolicy(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-run", "policy", "-runs", "4"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Discovery slot", "3.84s", "Tracking load"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunAblations(t *testing.T) {
	for _, name := range []string{"ablation-collision", "ablation-scan", "ablation-duty"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(context.Background(), &sb, io.Discard, []string{"-run", name, "-runs", "3", "-trials", "20"}); err != nil {
				t.Fatal(err)
			}
			if len(sb.String()) < 100 {
				t.Errorf("output too short:\n%s", sb.String())
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-run", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestWorkersDoNotChangeOutput runs the same sweep serial and wide and
// requires byte-identical stdout.
func TestWorkersDoNotChangeOutput(t *testing.T) {
	var serial, wide strings.Builder
	if err := run(context.Background(), &serial, io.Discard,
		[]string{"-run", "table1", "-trials", "80", "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &wide, io.Discard,
		[]string{"-run", "table1", "-trials", "80", "-workers", "8"}); err != nil {
		t.Fatal(err)
	}
	if serial.String() != wide.String() {
		t.Errorf("output differs across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s",
			serial.String(), wide.String())
	}
}

func TestProgressReporting(t *testing.T) {
	var sb, errb strings.Builder
	if err := run(context.Background(), &sb, &errb,
		[]string{"-run", "table1", "-trials", "40", "-progress"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "40/40 trials") {
		t.Errorf("progress stream missing completion line:\n%q", errb.String())
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	if err := run(ctx, &sb, io.Discard, []string{"-run", "table1", "-trials", "200"}); err == nil {
		t.Error("cancelled run reported success")
	}
}
