// Command bips-experiment regenerates the paper's tables and figures:
//
//	bips-experiment -run table1              # Section 4.1, Table 1
//	bips-experiment -run fig2                # Section 4.2, Figure 2
//	bips-experiment -run fig2 -series        # full (t, P) series
//	bips-experiment -run policy              # Section 5 analysis
//	bips-experiment -run ablation-collision  # collision handling on/off
//	bips-experiment -run ablation-scan       # slave scan parameter sweep
//	bips-experiment -run ablation-duty       # discovery-slot length sweep
//	bips-experiment -run all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bips/internal/experiments"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bips-experiment:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bips-experiment", flag.ContinueOnError)
	var (
		which  = fs.String("run", "all", "experiment: table1|fig2|policy|ablation-collision|ablation-scan|ablation-duty|all")
		seed   = fs.Int64("seed", 2003, "random seed")
		trials = fs.Int("trials", 500, "trials for table1/ablation-scan")
		runs   = fs.Int("runs", 40, "independent runs per configuration")
		series = fs.Bool("series", false, "with -run fig2: print the full (slaves, t, P) series")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	do := func(name string) bool { return *which == name || *which == "all" }

	if do("table1") {
		fmt.Fprintf(w, "== Table 1: average discovery time over %d inquiry trials ==\n", *trials)
		fmt.Fprintln(w, "   (master dedicated to inquiry; slave alternates inquiry scan and page scan)")
		res := experiments.RunTable1(*seed, *trials)
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("fig2") {
		fmt.Fprintln(w, "== Figure 2: discovery probability vs time (1s inquiry / 5s cycle, train A) ==")
		res, err := experiments.RunFig2(*seed, experiments.Fig2Config{Runs: *runs})
		if err != nil {
			return err
		}
		if *series {
			if err := res.Series(w); err != nil {
				return err
			}
		} else if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("policy") {
		fmt.Fprintln(w, "== Section 5: master scheduling policy ==")
		res, err := experiments.RunPolicy(*seed, *runs)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("ablation-collision") {
		fmt.Fprintln(w, "== Ablation: BlueHoc collision handling on/off ==")
		res, err := experiments.RunCollisionAblation(*seed, nil, *runs)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("ablation-scan") {
		fmt.Fprintln(w, "== Ablation: slave scan parameters (Table 1 workload) ==")
		res := experiments.RunScanAblation(*seed, *trials)
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("ablation-duty") {
		fmt.Fprintln(w, "== Ablation: discovery-slot length vs coverage of 20 slaves ==")
		res, err := experiments.RunDutyAblation(*seed, *runs)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	switch *which {
	case "table1", "fig2", "policy", "ablation-collision", "ablation-scan", "ablation-duty", "all":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", *which)
	}
}
