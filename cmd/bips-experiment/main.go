// Command bips-experiment regenerates the paper's tables and figures:
//
//	bips-experiment -run table1              # Section 4.1, Table 1
//	bips-experiment -run fig2                # Section 4.2, Figure 2
//	bips-experiment -run fig2 -series        # full (t, P) series
//	bips-experiment -run policy              # Section 5 analysis
//	bips-experiment -run ablation-collision  # collision handling on/off
//	bips-experiment -run ablation-scan       # slave scan parameter sweep
//	bips-experiment -run ablation-duty       # discovery-slot length sweep
//	bips-experiment -run all
//
// Trials execute on a worker pool (-workers, default GOMAXPROCS) with
// per-trial RNG streams derived from -seed, so every table is bit-identical
// at any worker count. -progress streams sweep progress to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"bips/internal/experiments"
	"bips/internal/runner"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bips-experiment:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w, errw io.Writer, args []string) error {
	fs := flag.NewFlagSet("bips-experiment", flag.ContinueOnError)
	var (
		which    = fs.String("run", "all", "experiment: table1|fig2|policy|ablation-collision|ablation-scan|ablation-duty|all")
		seed     = fs.Int64("seed", 2003, "root random seed; per-trial streams are derived from it")
		trials   = fs.Int("trials", 500, "trials for table1/ablation-scan")
		runs     = fs.Int("runs", 40, "independent runs per configuration")
		series   = fs.Bool("series", false, "with -run fig2: print the full (slaves, t, P) series")
		workers  = fs.Int("workers", 0, "worker goroutines (default GOMAXPROCS); results do not depend on it")
		progress = fs.Bool("progress", false, "report sweep progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *which {
	case "table1", "fig2", "policy", "ablation-collision", "ablation-scan", "ablation-duty", "all":
	default:
		return fmt.Errorf("unknown experiment %q", *which)
	}
	do := func(name string) bool { return *which == name || *which == "all" }

	// The label names the sweep currently feeding the progress meter; a
	// pool runs one sweep at a time, so a plain variable suffices.
	label := ""
	opts := []runner.Option{runner.WithWorkers(*workers)}
	if *progress {
		opts = append(opts, runner.WithProgress(func(done, total int) {
			fmt.Fprintf(errw, "\r%-20s %d/%d trials", label, done, total)
			if done == total {
				fmt.Fprintln(errw)
			}
		}))
	}
	pool := runner.NewPool(opts...)

	if do("table1") {
		label = "table1"
		fmt.Fprintf(w, "== Table 1: average discovery time over %d inquiry trials ==\n", *trials)
		fmt.Fprintln(w, "   (master dedicated to inquiry; slave alternates inquiry scan and page scan)")
		res, err := experiments.RunTable1On(ctx, pool, *seed, *trials)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("fig2") {
		label = "fig2"
		fmt.Fprintln(w, "== Figure 2: discovery probability vs time (1s inquiry / 5s cycle, train A) ==")
		res, err := experiments.RunFig2On(ctx, pool, *seed, experiments.Fig2Config{Runs: *runs})
		if err != nil {
			return err
		}
		if *series {
			if err := res.Series(w); err != nil {
				return err
			}
		} else if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("policy") {
		label = "policy"
		fmt.Fprintln(w, "== Section 5: master scheduling policy ==")
		res, err := experiments.RunPolicyOn(ctx, pool, *seed, *runs)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("ablation-collision") {
		label = "ablation-collision"
		fmt.Fprintln(w, "== Ablation: BlueHoc collision handling on/off ==")
		res, err := experiments.RunCollisionAblationOn(ctx, pool, *seed, nil, *runs)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("ablation-scan") {
		label = "ablation-scan"
		fmt.Fprintln(w, "== Ablation: slave scan parameters (Table 1 workload) ==")
		res, err := experiments.RunScanAblationOn(ctx, pool, *seed, *trials)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("ablation-duty") {
		label = "ablation-duty"
		fmt.Fprintln(w, "== Ablation: discovery-slot length vs coverage of 20 slaves ==")
		res, err := experiments.RunDutyAblationOn(ctx, pool, *seed, *runs)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
