// Command bips-experiment regenerates the paper's tables and figures:
//
//	bips-experiment -run table1              # Section 4.1, Table 1
//	bips-experiment -run fig2                # Section 4.2, Figure 2
//	bips-experiment -run fig2 -series        # full (t, P) series
//	bips-experiment -run policy              # Section 5 analysis
//	bips-experiment -run ablation-collision  # collision handling on/off
//	bips-experiment -run ablation-scan       # slave scan parameter sweep
//	bips-experiment -run ablation-duty       # discovery-slot length sweep
//	bips-experiment -run tracking            # whole-building tracking vs floor plan
//	bips-experiment -run all
//
// The tracking experiment goes beyond the paper: it deploys the full
// service (via the public bips API) over differently shaped floor plans
// and compares end-to-end tracking accuracy. It is excluded from -run all
// because it simulates whole deployments rather than single procedures.
//
// Trials execute on a worker pool (-workers, default GOMAXPROCS) with
// per-trial RNG streams derived from -seed, so every table is bit-identical
// at any worker count. -progress streams sweep progress to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"bips"
	"bips/internal/experiments"
	"bips/internal/replica"
	"bips/internal/runner"
	"bips/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bips-experiment:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w, errw io.Writer, args []string) error {
	fs := flag.NewFlagSet("bips-experiment", flag.ContinueOnError)
	var (
		which    = fs.String("run", "all", "experiment: table1|fig2|policy|ablation-collision|ablation-scan|ablation-duty|tracking|all")
		seed     = fs.Int64("seed", 2003, "root random seed; per-trial streams are derived from it")
		trials   = fs.Int("trials", 500, "trials for table1/ablation-scan")
		runs     = fs.Int("runs", 40, "independent runs per configuration")
		series   = fs.Bool("series", false, "with -run fig2: print the full (slaves, t, P) series")
		workers  = fs.Int("workers", 0, "worker goroutines (default GOMAXPROCS); results do not depend on it")
		progress = fs.Bool("progress", false, "report sweep progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *which {
	case "table1", "fig2", "policy", "ablation-collision", "ablation-scan", "ablation-duty", "tracking", "all":
	default:
		return fmt.Errorf("unknown experiment %q", *which)
	}
	do := func(name string) bool { return *which == name || *which == "all" }

	// The label names the sweep currently feeding the progress meter; a
	// pool runs one sweep at a time, so a plain variable suffices.
	label := ""
	opts := []runner.Option{runner.WithWorkers(*workers)}
	if *progress {
		opts = append(opts, runner.WithProgress(func(done, total int) {
			fmt.Fprintf(errw, "\r%-20s %d/%d trials", label, done, total)
			if done == total {
				fmt.Fprintln(errw)
			}
		}))
	}
	pool := runner.NewPool(opts...)

	if do("table1") {
		label = "table1"
		fmt.Fprintf(w, "== Table 1: average discovery time over %d inquiry trials ==\n", *trials)
		fmt.Fprintln(w, "   (master dedicated to inquiry; slave alternates inquiry scan and page scan)")
		res, err := experiments.RunTable1On(ctx, pool, *seed, *trials)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("fig2") {
		label = "fig2"
		fmt.Fprintln(w, "== Figure 2: discovery probability vs time (1s inquiry / 5s cycle, train A) ==")
		res, err := experiments.RunFig2On(ctx, pool, *seed, experiments.Fig2Config{Runs: *runs})
		if err != nil {
			return err
		}
		if *series {
			if err := res.Series(w); err != nil {
				return err
			}
		} else if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("policy") {
		label = "policy"
		fmt.Fprintln(w, "== Section 5: master scheduling policy ==")
		res, err := experiments.RunPolicyOn(ctx, pool, *seed, *runs)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("ablation-collision") {
		label = "ablation-collision"
		fmt.Fprintln(w, "== Ablation: BlueHoc collision handling on/off ==")
		res, err := experiments.RunCollisionAblationOn(ctx, pool, *seed, nil, *runs)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("ablation-scan") {
		label = "ablation-scan"
		fmt.Fprintln(w, "== Ablation: slave scan parameters (Table 1 workload) ==")
		res, err := experiments.RunScanAblationOn(ctx, pool, *seed, *trials)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if do("ablation-duty") {
		label = "ablation-duty"
		fmt.Fprintln(w, "== Ablation: discovery-slot length vs coverage of 20 slaves ==")
		res, err := experiments.RunDutyAblationOn(ctx, pool, *seed, *runs)
		if err != nil {
			return err
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	// Whole-deployment simulation, deliberately not part of "all".
	if *which == "tracking" {
		label = "tracking"
		if err := runTracking(ctx, pool, w, *seed, *runs, func(s string) { label = s }); err != nil {
			return err
		}
	}
	return nil
}

// trackingPlans are the floor-plan shapes the tracking experiment
// compares: the paper's department, an open grid, and a long hallway.
func trackingPlans() []struct {
	name string
	plan *bips.FloorPlan
} {
	return []struct {
		name string
		plan *bips.FloorPlan
	}{
		{"academic 2x5", bips.AcademicPlan()},
		{"grid 3x3", bips.GridPlan(3, 3, 0)},
		{"corridor 9", bips.CorridorPlan(9, 0)},
	}
}

// runTracking measures end-to-end tracking accuracy — the fraction of
// 30 s timeline samples at which a walking user was locatable — for each
// floor-plan shape, over `runs` independent deployments per shape.
func runTracking(ctx context.Context, pool *runner.Pool, w io.Writer, seed int64, runs int, setLabel func(string)) error {
	const (
		users    = 4
		duration = 3 * time.Minute
		step     = 30 * time.Second
	)
	fmt.Fprintf(w, "== Tracking accuracy vs floor plan (%d users x %s, %d deployments each) ==\n",
		users, duration, runs)
	tb := stats.NewTable("Floor plan", "Rooms", "Accuracy", "95% CI")
	for _, tp := range trackingPlans() {
		setLabel("tracking " + tp.name)
		var acc stats.Summary
		err := runner.Run(ctx, pool, seed, runs,
			func(i int, rng *rand.Rand) (replica.Result, error) {
				return replica.Run(rng.Int63(), replica.Config{
					Users:    users,
					Duration: duration,
					Step:     step,
					Plan:     tp.plan,
				})
			},
			func(i int, r replica.Result) error {
				acc.Add(r.Fraction())
				return nil
			})
		if err != nil {
			return err
		}
		tb.AddRow(tp.name, fmt.Sprintf("%d", len(tp.plan.Rooms)),
			fmt.Sprintf("%.1f%%", acc.Mean()*100),
			fmt.Sprintf("±%.1f%%", acc.CI95()*100))
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
