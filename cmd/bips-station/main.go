// Command bips-station runs one BIPS workstation cell against a remote
// central server. Lacking real Bluetooth hardware, the cell's radio world
// is simulated: the station spawns synthetic mobile devices that wander
// through its coverage disc, discovers and enrolls them with the paper's
// 3.84 s / 15.4 s policy, and pushes the resulting presence deltas to the
// server over the wire protocol — the same protocol a hardware-backed
// station would use.
//
//	bips-station -server 127.0.0.1:7700 -room 1 -devices 3 -duration 5m
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"bips/internal/baseband"
	"bips/internal/device"
	"bips/internal/hci"
	"bips/internal/mobility"
	"bips/internal/radio"
	"bips/internal/sim"
	"bips/internal/wire"
	"bips/internal/workstation"

	"bips/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("bips-station: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bips-station", flag.ContinueOnError)
	var (
		serverAddr = fs.String("server", "127.0.0.1:7700", "central server address")
		timeout    = fs.Duration("timeout", 5*time.Second, "connect timeout (0 waits forever)")
		room       = fs.Int("room", 1, "room id this station covers")
		devices    = fs.Int("devices", 3, "synthetic mobile devices in the cell")
		duration   = fs.Duration("duration", 2*time.Minute, "simulated running time")
		seed       = fs.Int64("seed", 1, "random seed")
		login      = fs.String("login", "", "comma-separated user:password pairs to log the synthetic devices in as")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	conn, err := net.DialTimeout("tcp", *serverAddr, *timeout)
	if err != nil {
		return err
	}
	client := wire.NewClient(wire.NewCodec(conn))
	defer func() {
		if err := client.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	stationAddr := baseband.BDAddr(0xA000_0000_0000 + uint64(*room))
	if err := client.Call(wire.MsgHello, wire.Hello{
		Station: stationAddr.String(),
		Room:    graph.NodeID(*room),
	}, nil); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	log.Printf("station %s registered for room %d", stationAddr, *room)

	k := sim.NewKernel(*seed)
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: stationAddr, Pos: radio.Point{X: 0, Y: 0}})
	ctrl := hci.New(k, hci.Config{Addr: stationAddr}, med)
	defer ctrl.Close()

	rep := workstation.ReporterFunc(func(p wire.Presence) error {
		log.Printf("presence delta: %s present=%v at=%v", p.Device, p.Present, p.At)
		return client.Call(wire.MsgPresence, p, nil)
	})
	ws, err := workstation.New(k, ctrl, workstation.Config{Room: graph.NodeID(*room)}, rep)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed + 7))
	var addrs []baseband.BDAddr
	for i := 0; i < *devices; i++ {
		w, err := mobility.NewWalker(mobility.WalkerConfig{
			// Wander a little beyond the 10 m disc so devices
			// come and go.
			Bounds: mobility.Rect{MinX: -14, MinY: -14, MaxX: 14, MaxY: 14},
			Start:  radio.Point{X: rng.Float64()*10 - 5, Y: rng.Float64()*10 - 5},
		}, rng)
		if err != nil {
			return err
		}
		addr := baseband.BDAddr(0xB000_0000_0000 + uint64(*room)<<16 + uint64(i+1))
		m, err := device.New(k, med, device.Config{Addr: addr, Walker: w}, rng)
		if err != nil {
			return err
		}
		ctrl.AttachDevice(m.Radio())
		addrs = append(addrs, addr)
		log.Printf("device %s wandering the cell", addr)
	}

	// Optionally bind devices to users so the server tracks them.
	if *login != "" {
		if err := loginDevices(client, *login, addrs); err != nil {
			return err
		}
	}

	ws.Start()
	k.RunUntil(sim.FromDuration(*duration))
	ws.Stop()
	st := ws.Stats()
	log.Printf("done: cycles=%d discoveries=%d enrollments=%d departures=%d reportErrors=%d",
		st.Cycles, st.Discoveries, st.Enrollments, st.Departures, st.ReportErrors)
	return nil
}

func loginDevices(client *wire.Client, spec string, addrs []baseband.BDAddr) error {
	pairs := splitPairs(spec)
	for i, p := range pairs {
		if i >= len(addrs) {
			break
		}
		if err := client.Call(wire.MsgLogin, wire.Login{
			User: p[0], Password: p[1], Device: addrs[i].String(),
		}, nil); err != nil {
			return fmt.Errorf("login %s: %w", p[0], err)
		}
		log.Printf("logged in %q on %s", p[0], addrs[i])
	}
	return nil
}

func splitPairs(spec string) [][2]string {
	var out [][2]string
	for _, item := range splitComma(spec) {
		for i := 0; i < len(item); i++ {
			if item[i] == ':' {
				out = append(out, [2]string{item[:i], item[i+1:]})
				break
			}
		}
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
