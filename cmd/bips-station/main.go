// Command bips-station runs one BIPS workstation cell against a remote
// central server. Lacking real Bluetooth hardware, the cell's radio world
// is simulated: the station spawns synthetic mobile devices that wander
// through its coverage disc, discovers and enrolls them with the paper's
// 3.84 s / 15.4 s policy, and pushes the resulting presence deltas to the
// server over the wire protocol — the same protocol a hardware-backed
// station would use.
//
//	bips-station -server 127.0.0.1:7700 -room 1 -devices 3 -duration 5m
//
// Deltas travel over a resumable ingest session (docs/PROTOCOL.md §8):
// the workstation buffers them (-batch, -batch-delay) and the station
// streams sequenced batch frames, reconnecting with exponential backoff
// when the server connection drops and resuming from the server's
// cumulative ack. The session id (-session, default derived from the
// station address) plus the deterministic -seed make the station fully
// crash-resumable: a killed station restarted with the same flags
// regenerates the same delta stream, and the server's ack makes it skip
// everything already applied — no lost deltas, no duplicates.
//
// The simulation is deterministic: the same -seed, -room, -devices and
// -duration produce the same device walks and therefore the same delta
// stream, which makes runs reproducible and resumable.
//
// The station exits non-zero when the server is unreachable at startup,
// and after the run when the final drain cannot deliver every delta.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"bips/internal/baseband"
	"bips/internal/device"
	"bips/internal/graph"
	"bips/internal/hci"
	"bips/internal/ingest"
	"bips/internal/mobility"
	"bips/internal/radio"
	"bips/internal/sim"
	"bips/internal/wire"
	"bips/internal/workstation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("bips-station: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bips-station", flag.ContinueOnError)
	var (
		serverAddr = fs.String("server", "127.0.0.1:7700", "central server address")
		timeout    = fs.Duration("timeout", 5*time.Second, "connect timeout")
		room       = fs.Int("room", 1, "room id this station covers")
		devices    = fs.Int("devices", 3, "synthetic mobile devices in the cell")
		duration   = fs.Duration("duration", 2*time.Minute, "simulated running time")
		seed       = fs.Int64("seed", 1, "random seed; equal seeds reproduce the exact delta stream")
		login      = fs.String("login", "", "comma-separated user:password pairs to log the synthetic devices in as")
		session    = fs.String("session", "", "ingest session id (default: derived from the station address); reuse it across restarts to resume")
		batchMax   = fs.Int("batch", ingest.DefaultMaxBatch, "deltas per ingest frame (workstation max-batch flush)")
		batchDelay = fs.Duration("batch-delay", 2*time.Second, "max simulated time a buffered delta waits before flush")
		drainWait  = fs.Duration("drain-timeout", 30*time.Second, "how long to wait at the end for every delta to be acked")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stationAddr := baseband.BDAddr(0xA000_0000_0000 + uint64(*room))
	sessionID := *session
	if sessionID == "" {
		sessionID = "station-" + stationAddr.String()
	}

	// Control connection: announce the station, log the synthetic
	// devices in, and above all fail fast with a clear message when the
	// server cannot be reached — a station that cannot deliver deltas
	// should say so and exit non-zero, not spin silently.
	conn, err := net.DialTimeout("tcp", *serverAddr, *timeout)
	if err != nil {
		return fmt.Errorf("server %s unreachable: %w (is bips-server running there?)", *serverAddr, err)
	}
	control := wire.NewClient(wire.NewFrameCodec(conn))
	if err := control.Call(wire.MsgHello, wire.Hello{
		Station: stationAddr.String(),
		Room:    graph.NodeID(*room),
	}, nil); err != nil {
		control.Close()
		return fmt.Errorf("hello: %w", err)
	}
	log.Printf("station %s registered for room %d (session %q)", stationAddr, *room, sessionID)

	k := sim.NewKernel(*seed)
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: stationAddr, Pos: radio.Point{X: 0, Y: 0}})
	ctrl := hci.New(k, hci.Config{Addr: stationAddr}, med)
	defer ctrl.Close()

	rng := rand.New(rand.NewSource(*seed + 7))
	var addrs []baseband.BDAddr
	for i := 0; i < *devices; i++ {
		w, err := mobility.NewWalker(mobility.WalkerConfig{
			// Wander a little beyond the 10 m disc so devices
			// come and go.
			Bounds: mobility.Rect{MinX: -14, MinY: -14, MaxX: 14, MaxY: 14},
			Start:  radio.Point{X: rng.Float64()*10 - 5, Y: rng.Float64()*10 - 5},
		}, rng)
		if err != nil {
			control.Close()
			return err
		}
		addr := baseband.BDAddr(0xB000_0000_0000 + uint64(*room)<<16 + uint64(i+1))
		m, err := device.New(k, med, device.Config{Addr: addr, Walker: w}, rng)
		if err != nil {
			control.Close()
			return err
		}
		ctrl.AttachDevice(m.Radio())
		addrs = append(addrs, addr)
		log.Printf("device %s wandering the cell", addr)
	}

	// Optionally bind devices to users so the server tracks them.
	if *login != "" {
		if err := loginDevices(control, *login, addrs); err != nil {
			control.Close()
			return err
		}
	}
	if err := control.Close(); err != nil {
		log.Printf("control close: %v", err)
	}

	// The ingest stream: the workstation cuts deterministic frames
	// (max-batch / simulated max-delay), the client delivers them with
	// reconnect + resume. The client's own wall-clock flush timer is
	// disabled so frame boundaries depend only on the simulation.
	stream, err := ingest.NewClient(ingest.ClientConfig{
		Addr:     *serverAddr,
		Session:  sessionID,
		Station:  stationAddr.String(),
		Room:     graph.NodeID(*room),
		MaxBatch: *batchMax,
		MaxDelay: -1,
		Logf:     log.Printf,
	})
	if err != nil {
		return err
	}

	ws, err := workstation.New(k, ctrl, workstation.Config{
		Room:       graph.NodeID(*room),
		BatchMax:   *batchMax,
		BatchDelay: sim.FromDuration(*batchDelay),
	}, stream)
	if err != nil {
		stream.Close()
		return err
	}

	ws.Start()
	k.RunUntil(sim.FromDuration(*duration))
	ws.Stop()

	drainErr := stream.Drain(*drainWait)
	ist := stream.Stats()
	if err := stream.Close(); err != nil {
		log.Printf("stream close: %v", err)
	}
	st := ws.Stats()
	log.Printf("done: cycles=%d discoveries=%d enrollments=%d departures=%d batches=%d", st.Cycles, st.Discoveries, st.Enrollments, st.Departures, st.Batches)
	log.Printf("ingest: framesSent=%d deltasAcked=%d acked=%d reconnects=%d skipped=%d",
		ist.FramesSent, ist.DeltasAcked, ist.Acked, ist.Reconnects, ist.SkippedFrames)
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	return nil
}

func loginDevices(client *wire.Client, spec string, addrs []baseband.BDAddr) error {
	pairs := splitPairs(spec)
	for i, p := range pairs {
		if i >= len(addrs) {
			break
		}
		err := client.Call(wire.MsgLogin, wire.Login{
			User: p[0], Password: p[1], Device: addrs[i].String(),
		}, nil)
		var werr *wire.Error
		if errors.As(err, &werr) && werr.Code == wire.CodeAuth {
			// A restarted station re-logs users that never logged out;
			// tracking continues under the existing binding.
			log.Printf("login %q: %s (continuing; a restarted station resumes the existing binding)", p[0], werr.Message)
			continue
		}
		if err != nil {
			return fmt.Errorf("login %s: %w", p[0], err)
		}
		log.Printf("logged in %q on %s", p[0], addrs[i])
	}
	return nil
}

func splitPairs(spec string) [][2]string {
	var out [][2]string
	for _, item := range splitComma(spec) {
		for i := 0; i < len(item); i++ {
			if item[i] == ':' {
				out = append(out, [2]string{item[:i], item[i+1:]})
				break
			}
		}
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
