package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
)

// childEnv carries the station arguments into the re-executed test
// binary: TestMain sees it and becomes bips-station.
const childEnv = "BIPS_STATION_CHILD"

func TestMain(m *testing.M) {
	if args := os.Getenv(childEnv); args != "" {
		if err := run(strings.Split(args, "\n")); err != nil {
			log.Fatal("bips-station child: ", err)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const (
	testRoom    = 1
	testDevices = 3
	pw          = "pw"
)

// stationDev mirrors the station's deterministic device addressing.
func stationDev(i int) baseband.BDAddr {
	return baseband.BDAddr(0xB000_0000_0000 + uint64(testRoom)<<16 + uint64(i+1))
}

// startServer runs an in-process central server on a real TCP listener
// with the station's users registered (the station logs them in itself
// via -login).
func startServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for i := 0; i < testDevices; i++ {
		name := fmt.Sprintf("u%d", i)
		if err := reg.Register(registry.UserID(name), name, pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	s := server.New(reg, locdb.New(), bld)
	s.Logf = nil
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l.Addr().String()
}

// stationCmd re-executes the test binary as bips-station. The long
// simulated duration (hours of simulated time, roughly a second of wall
// time) leaves a window to SIGKILL the process mid-stream.
func stationCmd(t *testing.T, addr string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-server", addr,
		"-room", fmt.Sprint(testRoom),
		"-devices", fmt.Sprint(testDevices),
		"-duration", "4h",
		"-seed", "42",
		"-session", "chaos-station",
		"-batch", "8",
		"-batch-delay", "5s",
		"-login", "u0:" + pw + ",u1:" + pw + ",u2:" + pw,
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), childEnv+"="+strings.Join(args, "\n"))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	t.Cleanup(func() {
		if cmd.Process != nil && cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	return cmd
}

// dbState captures the server's location state for the station's
// devices as canonical JSON: current fixes plus full movement history.
func dbState(t *testing.T, s *server.Server) string {
	t.Helper()
	type state struct {
		All  []locdb.Fix
		Hist [][]locdb.Fix
	}
	st := state{All: s.DB().All()}
	for i := 0; i < testDevices; i++ {
		st.Hist = append(st.Hist, s.DB().History(stationDev(i)))
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestStationKillAndResume is the chaos acceptance test: a live station
// is SIGKILLed mid-stream, restarted with the same seed and session,
// and the server's location database must end byte-identical to an
// uninterrupted run — no lost deltas, no duplicates. The restarted
// station regenerates its deterministic delta stream from the start;
// the ingest session's cumulative ack makes it skip everything the
// first life already delivered.
func TestStationKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos test")
	}

	// Reference: one uninterrupted run.
	refSrv, refAddr := startServer(t)
	ref := stationCmd(t, refAddr)
	if err := ref.Run(); err != nil {
		t.Fatalf("reference station run failed: %v", err)
	}
	refState := dbState(t, refSrv)
	if refState == `{"All":[],"Hist":[[],[],[]]}` {
		t.Fatal("reference run produced no tracked state; test is vacuous")
	}

	// Chaos: kill the station mid-stream...
	chaosSrv, chaosAddr := startServer(t)
	first := stationCmd(t, chaosAddr)
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	killedMidRun := first.ProcessState == nil
	if err := first.Process.Signal(syscall.SIGKILL); err != nil && killedMidRun {
		t.Fatalf("kill: %v", err)
	}
	_ = first.Wait()
	if !killedMidRun {
		t.Log("station finished before the kill on this machine; the restart still exercises full-stream dedup")
	}

	// ... and restart it with the same flags: same seed, same session.
	second := stationCmd(t, chaosAddr)
	if err := second.Run(); err != nil {
		t.Fatalf("restarted station failed: %v", err)
	}

	if got := dbState(t, chaosSrv); got != refState {
		t.Errorf("state after kill+resume diverges from uninterrupted run\nchaos: %s\nref:   %s", got, refState)
	}

	stats := chaosSrv.Ingest().Stats()
	t.Logf("chaos server ingest stats: %v", stats)
	if killedMidRun && stats["resumes"] == 0 {
		t.Error("server recorded no session resume after the kill")
	}
	// The reference counters must match too: same deltas applied, each
	// exactly once.
	refDB, chaosDB := refSrv.DB().Stats(), chaosSrv.DB().Stats()
	if refDB.Updates != chaosDB.Updates || refDB.Absences != chaosDB.Absences {
		t.Errorf("activity counters diverge: chaos %+v, ref %+v", chaosDB, refDB)
	}
}

// TestStationDeterministicSeed: two complete runs with the same seed
// against fresh servers must produce byte-identical location state —
// the property the resume protocol builds on, and the reason the
// -seed flag exists.
func TestStationDeterministicSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test")
	}
	var states []string
	for i := 0; i < 2; i++ {
		srv, addr := startServer(t)
		cmd := stationCmd(t, addr)
		if err := cmd.Run(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		states = append(states, dbState(t, srv))
	}
	if states[0] != states[1] {
		t.Errorf("same seed produced different state:\nA: %s\nB: %s", states[0], states[1])
	}
}

// TestStationUnreachableServer: a station pointed at a dead address
// must exit non-zero with a clear message, quickly.
func TestStationUnreachableServer(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// A listener we close immediately: the port is (briefly) known-dead.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	args := []string{"-server", addr, "-timeout", "2s"}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), childEnv+"="+strings.Join(args, "\n"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("station exited zero against unreachable server; output:\n%s", out)
	}
	if !strings.Contains(string(out), "unreachable") {
		t.Errorf("error output lacks a clear unreachable-server message:\n%s", out)
	}
}
