// Command bips-sim runs a whole-building BIPS simulation: the academic
// department preset with walking users tracked by every cell, printing a
// timeline of locate answers and the final tracking statistics.
//
//	bips-sim -users 5 -duration 5m -seed 7
//
// With -replicas > 1 it switches to Monte-Carlo mode: that many
// independent deployments (each with its own RNG stream derived from
// -seed and the replica index) run in parallel on a worker pool
// (-workers, default GOMAXPROCS), and the per-replica tracking accuracy —
// the fraction of timeline samples where a walking user was locatable —
// is aggregated into a mean with a 95% confidence interval. Results do
// not depend on the worker count.
//
//	bips-sim -replicas 32 -users 5 -duration 5m -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"bips"
	"bips/internal/runner"
	"bips/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bips-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w, errw io.Writer, args []string) error {
	fs := flag.NewFlagSet("bips-sim", flag.ContinueOnError)
	var (
		users    = fs.Int("users", 5, "walking users")
		duration = fs.Duration("duration", 5*time.Minute, "simulated time")
		step     = fs.Duration("step", 30*time.Second, "timeline sampling step")
		seed     = fs.Int64("seed", 7, "root random seed")
		replicas = fs.Int("replicas", 1, "independent deployments; > 1 switches to Monte-Carlo mode")
		workers  = fs.Int("workers", 0, "worker goroutines for -replicas > 1 (default GOMAXPROCS)")
		progress = fs.Bool("progress", false, "report replica progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users < 1 {
		return fmt.Errorf("need at least one user")
	}
	if *replicas < 1 {
		return fmt.Errorf("need at least one replica")
	}
	if *step <= 0 {
		return fmt.Errorf("step must be positive")
	}
	if *duration <= 0 {
		return fmt.Errorf("duration must be positive")
	}

	if *replicas > 1 {
		return runMonteCarlo(ctx, w, errw, mcConfig{
			users:    *users,
			duration: *duration,
			step:     *step,
			seed:     *seed,
			replicas: *replicas,
			workers:  *workers,
			progress: *progress,
		})
	}
	return runTimeline(w, *users, *duration, *step, *seed)
}

// runTimeline is the classic single-deployment mode with a printed
// room-by-room timeline.
func runTimeline(w io.Writer, users int, duration, step time.Duration, seed int64) error {
	svc, err := bips.New(bips.Config{Seed: seed})
	if err != nil {
		return err
	}
	rooms := svc.Rooms()

	names := make([]string, 0, users)
	for i := 0; i < users; i++ {
		name := fmt.Sprintf("user%02d", i+1)
		if err := svc.Register(name, "pw"); err != nil {
			return err
		}
		start := rooms[i%len(rooms)]
		dev, err := svc.AddWalkingUser(name, "pw", start)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s walking from %q on device %s\n", name, start, dev)
		names = append(names, name)
	}

	svc.Start()
	defer svc.Stop()

	fmt.Fprintf(w, "\n%-8s", "t")
	for _, n := range names {
		fmt.Fprintf(w, "  %-14s", n)
	}
	fmt.Fprintln(w)
	for elapsed := time.Duration(0); elapsed < duration; elapsed += step {
		svc.Run(step)
		fmt.Fprintf(w, "%-8s", svc.Now().Truncate(time.Second))
		for _, n := range names {
			cell := "(unseen)"
			if loc, err := svc.Locate(names[0], n); err == nil {
				cell = loc.RoomName
			}
			fmt.Fprintf(w, "  %-14s", cell)
		}
		fmt.Fprintln(w)
	}

	// Final pairwise navigation demo.
	if len(names) >= 2 {
		if p, err := svc.PathTo(names[0], names[1]); err == nil {
			fmt.Fprintf(w, "\n%s -> %s: %.0f m via %v\n", names[0], names[1], p.Meters, p.RoomNames)
		} else {
			fmt.Fprintf(w, "\n%s -> %s: %v\n", names[0], names[1], err)
		}
	}
	return nil
}

type mcConfig struct {
	users    int
	duration time.Duration
	step     time.Duration
	seed     int64
	replicas int
	workers  int
	progress bool
}

// replicaStats is one deployment's tracking outcome.
type replicaStats struct {
	// Located / Samples are the locate successes over all (user, step)
	// timeline samples.
	Located, Samples int
}

// runMonteCarlo runs independent replica deployments on a pool and
// aggregates tracking accuracy.
func runMonteCarlo(ctx context.Context, w, errw io.Writer, cfg mcConfig) error {
	opts := []runner.Option{runner.WithWorkers(cfg.workers)}
	if cfg.progress {
		opts = append(opts, runner.WithProgress(func(done, total int) {
			fmt.Fprintf(errw, "\rreplicas %d/%d", done, total)
			if done == total {
				fmt.Fprintln(errw)
			}
		}))
	}
	pool := runner.NewPool(opts...)

	var acc stats.Summary
	err := runner.Run(ctx, pool, cfg.seed, cfg.replicas,
		func(i int, rng *rand.Rand) (replicaStats, error) {
			// Each replica's Service gets its own derived seed; the
			// pool-provided stream is the canonical source so replica i
			// is identical no matter which worker runs it.
			return simulateReplica(rng.Int63(), cfg)
		},
		func(i int, r replicaStats) error {
			if r.Samples > 0 {
				acc.Add(float64(r.Located) / float64(r.Samples))
			}
			return nil
		})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Monte-Carlo: %d replicas x %d users x %s (step %s)\n",
		cfg.replicas, cfg.users, cfg.duration, cfg.step)
	tb := stats.NewTable("Quantity", "Value")
	tb.AddRow("Tracking accuracy (mean)", fmt.Sprintf("%.1f%%", acc.Mean()*100))
	tb.AddRow("95% CI", fmt.Sprintf("±%.1f%%", acc.CI95()*100))
	tb.AddRow("Worst replica", fmt.Sprintf("%.1f%%", acc.Min()*100))
	tb.AddRow("Best replica", fmt.Sprintf("%.1f%%", acc.Max()*100))
	_, werr := io.WriteString(w, tb.String())
	return werr
}

// simulateReplica runs one deployment and counts locatable samples.
func simulateReplica(seed int64, cfg mcConfig) (replicaStats, error) {
	svc, err := bips.New(bips.Config{Seed: seed})
	if err != nil {
		return replicaStats{}, err
	}
	rooms := svc.Rooms()
	names := make([]string, 0, cfg.users)
	for i := 0; i < cfg.users; i++ {
		name := fmt.Sprintf("user%02d", i+1)
		if err := svc.Register(name, "pw"); err != nil {
			return replicaStats{}, err
		}
		if _, err := svc.AddWalkingUser(name, "pw", rooms[i%len(rooms)]); err != nil {
			return replicaStats{}, err
		}
		names = append(names, name)
	}
	svc.Start()
	defer svc.Stop()

	var out replicaStats
	for elapsed := time.Duration(0); elapsed < cfg.duration; elapsed += cfg.step {
		svc.Run(cfg.step)
		for _, n := range names {
			out.Samples++
			if _, err := svc.Locate(names[0], n); err == nil {
				out.Located++
			}
		}
	}
	return out, nil
}
