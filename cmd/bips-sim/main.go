// Command bips-sim runs a whole-building BIPS simulation: walking users
// tracked by every cell, printing a timeline of locate answers and the
// final tracking statistics. By default it deploys the academic-department
// preset; -plan runs any floor plan from a JSON file (write a template
// with bips.AcademicPlan().Save, or see bips.GridPlan/CorridorPlan).
//
//	bips-sim -users 5 -duration 5m -seed 7
//	bips-sim -plan museum.json -users 8 -duration 10m
//
// With -replicas > 1 it switches to Monte-Carlo mode: that many
// independent deployments (each with its own RNG stream derived from
// -seed and the replica index) run in parallel on a worker pool
// (-workers, default GOMAXPROCS), and the per-replica tracking accuracy —
// the fraction of timeline samples where a walking user was locatable —
// is aggregated into a mean with a 95% confidence interval. Results do
// not depend on the worker count.
//
//	bips-sim -replicas 32 -users 5 -duration 5m -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"bips"
	"bips/internal/replica"
	"bips/internal/runner"
	"bips/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bips-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w, errw io.Writer, args []string) error {
	fs := flag.NewFlagSet("bips-sim", flag.ContinueOnError)
	var (
		users    = fs.Int("users", 5, "walking users")
		duration = fs.Duration("duration", 5*time.Minute, "simulated time")
		step     = fs.Duration("step", 30*time.Second, "timeline sampling step")
		seed     = fs.Int64("seed", 7, "root random seed")
		planPath = fs.String("plan", "", "floor-plan JSON file (default: built-in academic department)")
		replicas = fs.Int("replicas", 1, "independent deployments; > 1 switches to Monte-Carlo mode")
		workers  = fs.Int("workers", 0, "worker goroutines for -replicas > 1 (default GOMAXPROCS)")
		progress = fs.Bool("progress", false, "report replica progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users < 1 {
		return fmt.Errorf("need at least one user")
	}
	if *replicas < 1 {
		return fmt.Errorf("need at least one replica")
	}
	if *step <= 0 {
		return fmt.Errorf("step must be positive")
	}
	if *duration <= 0 {
		return fmt.Errorf("duration must be positive")
	}
	var plan *bips.FloorPlan
	if *planPath != "" {
		var err error
		if plan, err = bips.LoadFloorPlan(*planPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "floor plan %q: %d rooms, %d corridors\n",
			plan.Name, len(plan.Rooms), len(plan.Corridors))
	}

	if *replicas > 1 {
		return runMonteCarlo(ctx, w, errw, mcConfig{
			users:    *users,
			duration: *duration,
			step:     *step,
			seed:     *seed,
			plan:     plan,
			replicas: *replicas,
			workers:  *workers,
			progress: *progress,
		})
	}
	return runTimeline(w, *users, *duration, *step, *seed, plan)
}

// runTimeline is the classic single-deployment mode with a printed
// room-by-room timeline. The deployment setup is the shared replica unit,
// so timeline and Monte-Carlo mode cannot drift apart.
func runTimeline(w io.Writer, users int, duration, step time.Duration, seed int64, plan *bips.FloorPlan) error {
	svc, deployed, err := replica.New(seed, replica.Config{
		Users: users, Duration: duration, Step: step, Plan: plan,
	})
	if err != nil {
		return err
	}
	for _, u := range deployed {
		fmt.Fprintf(w, "%s walking from %q on device %s\n", u.Name, u.Start, u.Device)
	}

	svc.Start()
	defer svc.Stop()

	fmt.Fprintf(w, "\n%-8s", "t")
	for _, u := range deployed {
		fmt.Fprintf(w, "  %-14s", u.Name)
	}
	fmt.Fprintln(w)
	querier := deployed[0].Name
	for elapsed := time.Duration(0); elapsed < duration; elapsed += step {
		svc.Run(step)
		fmt.Fprintf(w, "%-8s", svc.Now().Truncate(time.Second))
		for _, u := range deployed {
			cell := "(unseen)"
			if loc, err := svc.Locate(querier, u.Name); err == nil {
				cell = loc.RoomName
			}
			fmt.Fprintf(w, "  %-14s", cell)
		}
		fmt.Fprintln(w)
	}

	// Final pairwise navigation demo.
	if len(deployed) >= 2 {
		a, b := deployed[0].Name, deployed[1].Name
		if p, err := svc.PathTo(a, b); err == nil {
			fmt.Fprintf(w, "\n%s -> %s: %.0f m via %v\n", a, b, p.Meters, p.RoomNames)
		} else {
			fmt.Fprintf(w, "\n%s -> %s: %v\n", a, b, err)
		}
	}
	return nil
}

type mcConfig struct {
	users    int
	duration time.Duration
	step     time.Duration
	seed     int64
	plan     *bips.FloorPlan
	replicas int
	workers  int
	progress bool
}

// runMonteCarlo runs independent replica deployments on a pool and
// aggregates tracking accuracy.
func runMonteCarlo(ctx context.Context, w, errw io.Writer, cfg mcConfig) error {
	opts := []runner.Option{runner.WithWorkers(cfg.workers)}
	if cfg.progress {
		opts = append(opts, runner.WithProgress(func(done, total int) {
			fmt.Fprintf(errw, "\rreplicas %d/%d", done, total)
			if done == total {
				fmt.Fprintln(errw)
			}
		}))
	}
	pool := runner.NewPool(opts...)

	var acc stats.Summary
	err := runner.Run(ctx, pool, cfg.seed, cfg.replicas,
		func(i int, rng *rand.Rand) (replica.Result, error) {
			// Each replica's Service gets its own derived seed; the
			// pool-provided stream is the canonical source so replica i
			// is identical no matter which worker runs it.
			return replica.Run(rng.Int63(), replica.Config{
				Users:    cfg.users,
				Duration: cfg.duration,
				Step:     cfg.step,
				Plan:     cfg.plan,
			})
		},
		func(i int, r replica.Result) error {
			if r.Samples > 0 {
				acc.Add(r.Fraction())
			}
			return nil
		})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Monte-Carlo: %d replicas x %d users x %s (step %s)\n",
		cfg.replicas, cfg.users, cfg.duration, cfg.step)
	tb := stats.NewTable("Quantity", "Value")
	tb.AddRow("Tracking accuracy (mean)", fmt.Sprintf("%.1f%%", acc.Mean()*100))
	tb.AddRow("95% CI", fmt.Sprintf("±%.1f%%", acc.CI95()*100))
	tb.AddRow("Worst replica", fmt.Sprintf("%.1f%%", acc.Min()*100))
	tb.AddRow("Best replica", fmt.Sprintf("%.1f%%", acc.Max()*100))
	_, werr := io.WriteString(w, tb.String())
	return werr
}
