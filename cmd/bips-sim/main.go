// Command bips-sim runs a whole-building BIPS simulation: the academic
// department preset with walking users tracked by every cell, printing a
// timeline of locate answers and the final tracking statistics.
//
//	bips-sim -users 5 -duration 5m -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bips"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bips-sim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bips-sim", flag.ContinueOnError)
	var (
		users    = fs.Int("users", 5, "walking users")
		duration = fs.Duration("duration", 5*time.Minute, "simulated time")
		step     = fs.Duration("step", 30*time.Second, "timeline sampling step")
		seed     = fs.Int64("seed", 7, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users < 1 {
		return fmt.Errorf("need at least one user")
	}

	svc, err := bips.New(bips.Config{Seed: *seed})
	if err != nil {
		return err
	}
	rooms := svc.Rooms()

	names := make([]string, 0, *users)
	for i := 0; i < *users; i++ {
		name := fmt.Sprintf("user%02d", i+1)
		if err := svc.Register(name, "pw"); err != nil {
			return err
		}
		start := rooms[i%len(rooms)]
		dev, err := svc.AddWalkingUser(name, "pw", start)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s walking from %q on device %s\n", name, start, dev)
		names = append(names, name)
	}

	svc.Start()
	defer svc.Stop()

	fmt.Fprintf(w, "\n%-8s", "t")
	for _, n := range names {
		fmt.Fprintf(w, "  %-14s", n)
	}
	fmt.Fprintln(w)
	for elapsed := time.Duration(0); elapsed < *duration; elapsed += *step {
		svc.Run(*step)
		fmt.Fprintf(w, "%-8s", svc.Now().Truncate(time.Second))
		for _, n := range names {
			cell := "(unseen)"
			if loc, err := svc.Locate(names[0], n); err == nil {
				cell = loc.RoomName
			}
			fmt.Fprintf(w, "  %-14s", cell)
		}
		fmt.Fprintln(w)
	}

	// Final pairwise navigation demo.
	if len(names) >= 2 {
		if p, err := svc.PathTo(names[0], names[1]); err == nil {
			fmt.Fprintf(w, "\n%s -> %s: %.0f m via %v\n", names[0], names[1], p.Meters, p.RoomNames)
		} else {
			fmt.Fprintf(w, "\n%s -> %s: %v\n", names[0], names[1], err)
		}
	}
	return nil
}
