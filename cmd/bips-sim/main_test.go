package main

import (
	"context"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"bips"
)

func TestSimRuns(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-users", "2", "-duration", "1m", "-step", "20s", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"user01", "user02", "walking from"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Three timeline rows for a 1m run sampled every 20s.
	if got := strings.Count(out, "\n"); got < 8 {
		t.Errorf("output too short (%d lines)", got)
	}
}

// TestSimCustomPlan runs a floor plan loaded from JSON end-to-end: the
// timeline tracks walking users through the custom rooms and the final
// navigation demo answers a PathTo query over them.
func TestSimCustomPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := bips.GridPlan(3, 3, 12).Save(path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	args := []string{"-plan", path, "-users", "2", "-duration", "3m", "-step", "30s", "-seed", "2"}
	if err := run(context.Background(), &sb, io.Discard, args); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`floor plan "grid-3x3": 9 rooms, 12 corridors`, "Room A1", "user01 -> user02"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The navigation demo line must answer with an actual path ("N m via
	// [...]"), not an error.
	if !strings.Contains(out, "m via [Room") {
		t.Errorf("no PathTo answer over the custom plan:\n%s", out)
	}

	if err := run(context.Background(), &sb, io.Discard, []string{"-plan", "/nonexistent.json"}); err == nil {
		t.Error("missing plan file accepted")
	}
}

func TestSimValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-users", "0"}); err == nil {
		t.Error("zero users accepted")
	}
	if err := run(context.Background(), &sb, io.Discard, []string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestMonteCarloMode(t *testing.T) {
	var sb strings.Builder
	args := []string{"-replicas", "4", "-users", "2", "-duration", "1m", "-step", "20s", "-seed", "3"}
	if err := run(context.Background(), &sb, io.Discard, args); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Monte-Carlo: 4 replicas", "Tracking accuracy", "95% CI"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Worker count must not change the aggregate.
	var serial, wide strings.Builder
	if err := run(context.Background(), &serial, io.Discard, append(args, "-workers", "1")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &wide, io.Discard, append(args, "-workers", "8")); err != nil {
		t.Fatal(err)
	}
	if serial.String() != wide.String() {
		t.Errorf("Monte-Carlo output differs across worker counts:\n-- 1 --\n%s\n-- 8 --\n%s",
			serial.String(), wide.String())
	}
}

func TestMonteCarloValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-replicas", "0"}); err == nil {
		t.Error("zero replicas accepted")
	}
	if err := run(context.Background(), &sb, io.Discard, []string{"-step", "0s"}); err == nil {
		t.Error("zero step accepted")
	}
}

func TestDurationValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, io.Discard, []string{"-replicas", "2", "-duration", "0s"}); err == nil {
		t.Error("zero duration accepted")
	}
}
