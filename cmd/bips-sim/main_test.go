package main

import (
	"strings"
	"testing"
)

func TestSimRuns(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-users", "2", "-duration", "1m", "-step", "20s", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"user01", "user02", "walking from"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Three timeline rows for a 1m run sampled every 20s.
	if got := strings.Count(out, "\n"); got < 8 {
		t.Errorf("output too short (%d lines)", got)
	}
}

func TestSimValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-users", "0"}); err == nil {
		t.Error("zero users accepted")
	}
	if err := run(&sb, []string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
