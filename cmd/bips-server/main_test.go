package main

import (
	"encoding/json"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bips/internal/graph"
	"bips/internal/sim"
	"bips/internal/wire"
)

// childEnv carries the server arguments into the re-executed test
// binary: TestMain sees it and becomes bips-server.
const childEnv = "BIPS_SERVER_CHILD"

func TestMain(m *testing.M) {
	if args := os.Getenv(childEnv); args != "" {
		if err := run(strings.Split(args, "\n")); err != nil {
			log.Fatal("bips-server child: ", err)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnServer re-executes the test binary as a real bips-server process
// on the given data directory and waits until it is accepting. It
// returns the bound address and the process.
func spawnServer(t *testing.T, dataDir string) (string, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := []string{
		"-listen", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-addr-file", addrFile,
		"-wal-flush", "2ms",
		"-snapshot-interval", "150ms",
		"-user", "alice:pw",
		"-user", "bob:pw",
		"-user", "churn:pw",
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), childEnv+"="+strings.Join(args, "\n"))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	deadline := time.Now().Add(15 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			addr := string(raw)
			if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
				conn.Close()
				return addr, cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not come up within 15s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func dialClient(t *testing.T, addr string) *wire.Client {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	return wire.NewClient(wire.NewFrameCodec(conn))
}

const (
	devAlice = "B0:00:00:00:00:01"
	devBob   = "B0:00:00:00:00:02"
	devChurn = "B0:00:00:00:00:03"
)

// historyAnswers is the full query surface captured for comparison
// across the kill/restart, as marshalled JSON so the check is
// byte-exact.
type historyAnswers struct {
	Locate     json.RawMessage
	LocateAts  []json.RawMessage
	Trajectory json.RawMessage
}

func captureAnswers(t *testing.T, c *wire.Client) historyAnswers {
	t.Helper()
	var a historyAnswers
	var loc wire.LocateResult
	if err := c.Call(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "bob"}, &loc); err != nil {
		t.Fatalf("locate: %v", err)
	}
	a.Locate = mustJSON(t, loc)
	for _, at := range []sim.Tick{100, 250, 400, 9000} {
		var r wire.LocateResult
		if err := c.Call(wire.MsgLocateAt, wire.LocateAt{Querier: "alice", Target: "bob", At: at}, &r); err != nil {
			t.Fatalf("locate.at %d: %v", at, err)
		}
		a.LocateAts = append(a.LocateAts, mustJSON(t, r))
	}
	var traj wire.TrajectoryResult
	if err := c.Call(wire.MsgTrajectory, wire.TrajectoryQuery{
		Querier: "alice", Target: "bob", From: 0, To: 100000,
	}, &traj); err != nil {
		t.Fatalf("trajectory: %v", err)
	}
	a.Trajectory = mustJSON(t, traj)
	return a
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func login(t *testing.T, c *wire.Client, user, dev string) {
	t.Helper()
	if err := c.Call(wire.MsgLogin, wire.Login{User: user, Password: "pw", Device: dev}, nil); err != nil {
		t.Fatalf("login %s: %v", user, err)
	}
}

// TestKillAndRestartRecoversState is the acceptance test for the
// storage engine at the process level: a real bips-server process with
// -data-dir is SIGKILLed mid-load and restarted, and the restarted
// process answers the entire presence + history query surface over wire
// v2 byte-identically for the state that had reached the WAL.
func TestKillAndRestartRecoversState(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	dataDir := t.TempDir()
	addr, cmd := spawnServer(t, dataDir)
	client := dialClient(t, addr)

	// Settled load: bob walks four rooms; alice stays put.
	login(t, client, "alice", devAlice)
	login(t, client, "bob", devBob)
	login(t, client, "churn", devChurn)
	if err := client.Call(wire.MsgPresence, wire.Presence{Device: devAlice, Room: 1, At: 50, Present: true}, nil); err != nil {
		t.Fatal(err)
	}
	for i, room := range []graph.NodeID{2, 4, 6, 3} {
		if err := client.Call(wire.MsgPresence, wire.Presence{
			Device: devBob, Room: room, At: sim.Tick(100 * (i + 1)), Present: true,
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := captureAnswers(t, client)

	// Ongoing churn on a third device so the kill lands mid-load.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		churnClient := dialClient(t, addr)
		defer churnClient.Close()
		rooms := []graph.NodeID{1, 2, 3, 4, 5, 6}
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			default:
			}
			_ = churnClient.Call(wire.MsgPresence, wire.Presence{
				Device: devChurn, Room: rooms[i%len(rooms)], At: sim.Tick(1000 + i), Present: true,
			}, nil)
		}
	}()

	// Let several WAL group commits (and likely a checkpoint) pass so
	// the settled state is durable, then kill without warning.
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	close(churnStop)
	<-churnDone
	_ = cmd.Wait()
	client.Close()

	// Restart on the same directory. The registry is not durable by
	// design (the paper's registration is an offline procedure), so the
	// users log in again; the location state must already be there.
	addr2, _ := spawnServer(t, dataDir)
	client2 := dialClient(t, addr2)
	defer client2.Close()
	login(t, client2, "alice", devAlice)
	login(t, client2, "bob", devBob)

	got := captureAnswers(t, client2)
	if string(got.Locate) != string(want.Locate) {
		t.Errorf("locate after restart:\n want %s\n  got %s", want.Locate, got.Locate)
	}
	for i := range want.LocateAts {
		if string(got.LocateAts[i]) != string(want.LocateAts[i]) {
			t.Errorf("locate.at[%d] after restart:\n want %s\n  got %s", i, want.LocateAts[i], got.LocateAts[i])
		}
	}
	if string(got.Trajectory) != string(want.Trajectory) {
		t.Errorf("trajectory after restart:\n want %s\n  got %s", want.Trajectory, got.Trajectory)
	}

	// The restarted server must also report that it recovered.
	var stats wire.StatsResult
	if err := client2.Call(wire.MsgStats, wire.StatsQuery{}, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Counters["storage.restored_devices"] == 0 && stats.Counters["storage.replayed_records"] == 0 {
		t.Errorf("restarted server reports no recovery: %v", stats.Counters)
	}
}

// TestCleanShutdownCheckpoint: SIGTERM drains and writes a final
// checkpoint, so the next start recovers from the snapshot alone.
func TestCleanShutdownCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	dataDir := t.TempDir()
	addr, cmd := spawnServer(t, dataDir)
	client := dialClient(t, addr)
	login(t, client, "alice", devAlice)
	login(t, client, "bob", devBob)
	for i, room := range []graph.NodeID{5, 7, 9} {
		if err := client.Call(wire.MsgPresence, wire.Presence{
			Device: devBob, Room: room, At: sim.Tick(10 * (i + 1)), Present: true,
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("clean shutdown exited with %v", err)
	}

	addr2, _ := spawnServer(t, dataDir)
	client2 := dialClient(t, addr2)
	defer client2.Close()
	login(t, client2, "alice", devAlice)
	login(t, client2, "bob", devBob)
	var stats wire.StatsResult
	if err := client2.Call(wire.MsgStats, wire.StatsQuery{}, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Counters["storage.restored_devices"] == 0 {
		t.Errorf("no devices restored from the final checkpoint: %v", stats.Counters)
	}
	if stats.Counters["storage.replayed_records"] != 0 {
		t.Errorf("clean shutdown still left %d WAL records to replay", stats.Counters["storage.replayed_records"])
	}
	var traj wire.TrajectoryResult
	if err := client2.Call(wire.MsgTrajectory, wire.TrajectoryQuery{
		Querier: "alice", Target: "bob", From: 0, To: 1000,
	}, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Steps) != 3 {
		t.Errorf("recovered trajectory = %+v, want 3 steps", traj.Steps)
	}
}
