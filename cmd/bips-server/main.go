// Command bips-server runs the BIPS central server over TCP: the user
// registry, the location database and the navigation service. By default
// it serves the built-in academic-department building; -plan loads any
// floor plan from a JSON file (see bips.FloorPlan, and
// bips.AcademicPlan().Save to write a template to edit).
//
//	bips-server -listen :7700 -user alice:secret -user bob:secret
//	bips-server -plan museum.json -user guide:secret
//	bips-server -shards 32 -inflight 128 -loadgen-users 16
//	bips-server -data-dir /var/lib/bips -snapshot-interval 30s
//
// Workstations (bips-station) connect and push presence deltas; clients
// (bips-query) log users in and ask locate/path/rooms queries — plus the
// historical at/trajectory queries — over wire protocol v1 or v2
// (sniffed per connection, see docs/PROTOCOL.md).
//
// -data-dir makes the location database durable: presence deltas are
// written through to an append-only WAL with periodic snapshots
// (-snapshot-interval), and a restarted server recovers the full
// presence state and movement history from the directory (the recipe is
// in docs/OPERATIONS.md). Without it the database lives in memory and a
// restart starts empty. -history-limit bounds the per-device history
// backing the at/trajectory queries (0 disables them).
//
// The history analytics queries (contacts/occupancy/dwell, PROTOCOL.md
// §10) are always served; with -data-dir their sealed segments live
// under <data-dir>/analytics and survive restarts. -analytics-seal sets
// the compaction period and -analytics-retention bounds how far back
// (in simulated time) the analytics history reaches; see
// docs/OPERATIONS.md §9 for tuning.
//
// -shards splits the location database into independently locked shards
// (default 16); -inflight bounds concurrently executing requests per
// connection; -loadgen-users N registers the synthetic users user0..N-1
// with password "loadgen" that bips-loadgen's locate/mixed/mix modes
// expect. Clients may also subscribe to push notifications (PROTOCOL.md
// §9): -event-buffer, -drop-limit and -max-subs bound what one
// subscriber connection may cost the server. -fanout-ring sizes the
// staged delivery ring between ingest and subscriber callbacks, and
// -pprof serves net/http/pprof on a side address so fan-out contention
// is profileable under load. -flush-bytes bounds how much a connection
// writer may stage before forcing a flush — the flush-coalescing knob;
// its effect shows up in the wire.flushes / wire.frames_per_flush
// counters of the stats output. Tuning guidance lives in
// docs/OPERATIONS.md.
//
// On SIGINT/SIGTERM the server stops accepting, drains connections and —
// when running with -data-dir — flushes the WAL and writes a final
// checkpoint before exiting.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux for -pprof
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bips"
	"bips/internal/analytics"
	"bips/internal/building"
	"bips/internal/fanout"
	"bips/internal/loadgen"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
	"bips/internal/sim"
	"bips/internal/storage"
)

type userList []string

func (u *userList) String() string { return strings.Join(*u, ",") }

func (u *userList) Set(v string) error {
	if !strings.Contains(v, ":") {
		return fmt.Errorf("want user:password, got %q", v)
	}
	*u = append(*u, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("bips-server: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bips-server", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7700", "TCP listen address")
	planPath := fs.String("plan", "", "floor-plan JSON file (default: built-in academic department)")
	shards := fs.Int("shards", locdb.DefaultShards, "location-database shard count")
	inflight := fs.Int("inflight", server.DefaultMaxInFlight, "max concurrently executing requests per connection")
	loadgenUsers := fs.Int("loadgen-users", 0, `register N synthetic users user0..userN-1 (password "loadgen") for bips-loadgen`)
	dataDir := fs.String("data-dir", "", "durable storage directory (empty: in-memory only, state is lost on restart)")
	snapInterval := fs.Duration("snapshot-interval", storage.DefaultSnapshotInterval, "checkpoint period for -data-dir")
	historyLimit := fs.Int("history-limit", locdb.DefaultHistoryLimit, "per-device movement-history bound (0 disables at/trajectory queries)")
	walFlush := fs.Duration("wal-flush", storage.DefaultFlushInterval, "WAL group-commit interval for -data-dir (the crash-loss window)")
	analyticsSeal := fs.Duration("analytics-seal", 0, "analytics segment-seal period (0: the 30s default; negative: seal only at shutdown)")
	analyticsRetention := fs.Duration("analytics-retention", 0, "analytics history retention in simulated time (0: keep everything)")
	eventBuffer := fs.Int("event-buffer", server.DefaultEventBuffer, "per-connection push-event buffer (queued events before drops)")
	dropLimit := fs.Int("drop-limit", server.DefaultDropLimit, "dropped events before a subscriber is disconnected as a slow consumer")
	maxSubs := fs.Int("max-subs", server.DefaultMaxSubsPerConn, "max subscriptions per connection")
	fanoutRing := fs.Int("fanout-ring", fanout.DefaultRing, "staged fan-out delivery ring capacity (matched events queued between ingest and subscriber callbacks)")
	flushBytes := fs.Int("flush-bytes", server.DefaultFlushBytes, "max bytes a connection writer stages before forcing a flush (lower bounds latency, higher amortizes more frames per write)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (empty: disabled)")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file (for scripts using :0)")
	var users userList
	fs.Var(&users, "user", "register user:password (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The profiling endpoint comes up before anything else so a hung
	// startup (WAL recovery, say) is itself profileable.
	if *pprofAddr != "" {
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		defer pl.Close()
		go func() {
			// The net/http/pprof blank import registers its handlers on
			// http.DefaultServeMux.
			if err := http.Serve(pl, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("pprof: %v", err)
			}
		}()
		log.Printf("pprof listening on http://%s/debug/pprof/", pl.Addr())
	}

	bld, err := loadBuilding(*planPath)
	if err != nil {
		return err
	}
	reg := registry.New()
	for _, u := range users {
		parts := strings.SplitN(u, ":", 2)
		if err := reg.Register(registry.UserID(parts[0]), parts[0], parts[1],
			registry.RightLocate, registry.RightTrackable); err != nil {
			return err
		}
		log.Printf("registered user %q", parts[0])
	}
	for i := 0; i < *loadgenUsers; i++ {
		name := loadgen.UserName(i)
		if err := reg.Register(registry.UserID(name), name, "loadgen",
			registry.RightLocate, registry.RightTrackable); err != nil {
			return err
		}
	}
	if *loadgenUsers > 0 {
		log.Printf("registered %d loadgen users", *loadgenUsers)
	}

	db, closeStore, err := openStore(*dataDir, *shards, *historyLimit, *snapInterval, *walFlush)
	if err != nil {
		return err
	}
	srvOpts := []server.Option{
		server.WithMaxInFlight(*inflight),
		server.WithEventBuffer(*eventBuffer),
		server.WithDropLimit(*dropLimit),
		server.WithMaxSubsPerConn(*maxSubs),
		server.WithFanoutRing(*fanoutRing),
		server.WithFlushBytes(*flushBytes),
	}
	eng, err := openAnalytics(*dataDir, *historyLimit, *analyticsSeal, *analyticsRetention)
	if err != nil {
		closeStore()
		return err
	}
	if eng != nil {
		srvOpts = append(srvOpts, server.WithAnalytics(eng))
	}
	srv := server.New(reg, db, bld, srvOpts...)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(l.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	log.Printf("BIPS central server listening on %s (%d rooms, %d locdb shards, %d in-flight/conn)",
		l.Addr(), bld.NumRooms(), db.NumShards(), srv.MaxInFlight())

	// Graceful shutdown: stop serving first, then checkpoint the store.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, shutting down", s)
		if err := srv.Close(); err != nil {
			log.Printf("server close: %v", err)
		}
	}()

	serveErr := srv.Serve(l)
	if err := closeStore(); err != nil {
		log.Printf("storage close: %v", err)
		if serveErr == nil {
			serveErr = err
		}
	}
	if eng != nil {
		if err := eng.Close(); err != nil {
			log.Printf("analytics close: %v", err)
			if serveErr == nil {
				serveErr = err
			}
		}
	}
	return serveErr
}

// openAnalytics builds the history analytics engine when the deployment
// is durable or asks for a non-default seal/retention policy; segments
// then live under <data-dir>/analytics beside the WAL. Otherwise it
// returns nil and the server runs its own memory-only engine.
func openAnalytics(dataDir string, historyLimit int, seal, retention time.Duration) (*analytics.Engine, error) {
	if dataDir == "" && seal == 0 && retention == 0 {
		return nil, nil
	}
	opts := analytics.Options{
		HistoryLimit: historyLimit,
		SealInterval: seal,
		Retain:       sim.FromDuration(retention),
	}
	if dataDir != "" {
		opts.Dir = filepath.Join(dataDir, "analytics")
	}
	eng, err := analytics.Open(opts)
	if err != nil {
		return nil, err
	}
	if opts.Dir != "" {
		log.Printf("analytics engine %s: %d segments (%d sealed runs) recovered",
			opts.Dir, eng.Stats()["segments"], eng.Stats()["sealed_runs"])
	}
	return eng, nil
}

// openStore builds the location backend: durable when dataDir is set,
// in-memory otherwise. The returned closer flushes and checkpoints the
// durable backend (a no-op for the memory one).
func openStore(dataDir string, shards, historyLimit int, snapInterval, walFlush time.Duration) (locdb.Store, func() error, error) {
	if dataDir == "" {
		if historyLimit < 0 {
			historyLimit = 0
		}
		db, err := locdb.NewSharded(shards, historyLimit)
		if err != nil {
			return nil, nil, err
		}
		return db, db.Close, nil
	}
	if historyLimit == 0 {
		historyLimit = -1 // storage.Options: negative disables
	}
	st, err := storage.Open(storage.Options{
		Dir:              dataDir,
		Shards:           shards,
		HistoryLimit:     historyLimit,
		SnapshotInterval: snapInterval,
		FlushInterval:    walFlush,
	})
	if err != nil {
		return nil, nil, err
	}
	stats := st.StorageStats()
	log.Printf("durable store %s: recovered %d devices from snapshot, replayed %d WAL records",
		dataDir, stats["restored_devices"], stats["replayed_records"])
	return st, st.Close, nil
}

// loadBuilding compiles the -plan file, or falls back to the built-in
// academic-department preset.
func loadBuilding(path string) (*building.Building, error) {
	if path == "" {
		return building.AcademicDepartment()
	}
	plan, err := bips.LoadFloorPlan(path)
	if err != nil {
		return nil, err
	}
	bld, err := plan.Compile()
	if err != nil {
		return nil, err
	}
	log.Printf("loaded floor plan %q from %s (%d rooms)", plan.Name, path, bld.NumRooms())
	return bld, nil
}
