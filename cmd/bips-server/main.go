// Command bips-server runs the BIPS central server over TCP: the user
// registry, the location database and the navigation service. By default
// it serves the built-in academic-department building; -plan loads any
// floor plan from a JSON file (see bips.FloorPlan, and
// bips.AcademicPlan().Save to write a template to edit).
//
//	bips-server -listen :7700 -user alice:secret -user bob:secret
//	bips-server -plan museum.json -user guide:secret
//	bips-server -shards 32 -inflight 128 -loadgen-users 16
//
// Workstations (bips-station) connect and push presence deltas; clients
// (bips-query) log users in and ask locate/path/rooms queries, over wire
// protocol v1 or v2 (sniffed per connection, see docs/PROTOCOL.md).
//
// -shards splits the location database into independently locked shards
// (default 16); -inflight bounds concurrently executing requests per
// connection; -loadgen-users N registers the synthetic users user0..N-1
// with password "loadgen" that bips-loadgen's locate/mixed modes expect.
// Tuning guidance lives in docs/OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"bips"
	"bips/internal/building"
	"bips/internal/loadgen"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
)

type userList []string

func (u *userList) String() string { return strings.Join(*u, ",") }

func (u *userList) Set(v string) error {
	if !strings.Contains(v, ":") {
		return fmt.Errorf("want user:password, got %q", v)
	}
	*u = append(*u, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("bips-server: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bips-server", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7700", "TCP listen address")
	planPath := fs.String("plan", "", "floor-plan JSON file (default: built-in academic department)")
	shards := fs.Int("shards", locdb.DefaultShards, "location-database shard count")
	inflight := fs.Int("inflight", server.DefaultMaxInFlight, "max concurrently executing requests per connection")
	loadgenUsers := fs.Int("loadgen-users", 0, `register N synthetic users user0..userN-1 (password "loadgen") for bips-loadgen`)
	var users userList
	fs.Var(&users, "user", "register user:password (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	bld, err := loadBuilding(*planPath)
	if err != nil {
		return err
	}
	reg := registry.New()
	for _, u := range users {
		parts := strings.SplitN(u, ":", 2)
		if err := reg.Register(registry.UserID(parts[0]), parts[0], parts[1],
			registry.RightLocate, registry.RightTrackable); err != nil {
			return err
		}
		log.Printf("registered user %q", parts[0])
	}
	for i := 0; i < *loadgenUsers; i++ {
		name := loadgen.UserName(i)
		if err := reg.Register(registry.UserID(name), name, "loadgen",
			registry.RightLocate, registry.RightTrackable); err != nil {
			return err
		}
	}
	if *loadgenUsers > 0 {
		log.Printf("registered %d loadgen users", *loadgenUsers)
	}

	db, err := locdb.NewSharded(*shards, locdb.DefaultHistoryLimit)
	if err != nil {
		return err
	}
	srv := server.New(reg, db, bld, server.WithMaxInFlight(*inflight))
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("BIPS central server listening on %s (%d rooms, %d locdb shards, %d in-flight/conn)",
		l.Addr(), bld.NumRooms(), db.NumShards(), srv.MaxInFlight())
	return srv.Serve(l)
}

// loadBuilding compiles the -plan file, or falls back to the built-in
// academic-department preset.
func loadBuilding(path string) (*building.Building, error) {
	if path == "" {
		return building.AcademicDepartment()
	}
	plan, err := bips.LoadFloorPlan(path)
	if err != nil {
		return nil, err
	}
	bld, err := plan.Compile()
	if err != nil {
		return nil, err
	}
	log.Printf("loaded floor plan %q from %s (%d rooms)", plan.Name, path, bld.NumRooms())
	return bld, nil
}
